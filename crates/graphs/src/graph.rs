//! The immutable port-numbered graph type, stored in CSR (compressed sparse
//! row) form.
//!
//! The adjacency is a single flat [`Neighbor`] array indexed by a row-offset
//! table: `adj[offsets[v]..offsets[v + 1]]` is vertex `v`'s port-ordered
//! neighbor slice. Compared to the former `Vec<Vec<Neighbor>>` this removes
//! one pointer chase and one heap allocation per vertex, and lets the round
//! engine address per-port message slots with plain offset arithmetic (see
//! `local_model`'s message plane, which borrows [`Graph::csr_offsets`]).
//!
//! Edge endpoints are stored either explicitly (one `(u, v)` pair per edge)
//! or *implicitly* for the regular families the large-`n` experiments sweep
//! (cycles, circulants, complete d-ary trees): an implicit graph answers
//! [`Graph::endpoints`] by closed form and only materializes the full edge
//! list if [`Graph::edges`] is actually called.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::OnceLock;

/// Index of a vertex, in `0..n`.
///
/// Note: this is a *simulator-internal* index. In the `RandLOCAL` model
/// vertices are anonymous; the simulator uses `NodeId` for bookkeeping but
/// never exposes it to a randomized node program as an identifier.
pub type NodeId = usize;

/// Index of an undirected edge, in `0..m`.
pub type EdgeId = usize;

/// A port number at a vertex, in `0..deg(v)`.
///
/// Port numbering is the standard formalization of "each edge supports
/// communication in both directions" in the LOCAL model: a processor can
/// distinguish its incident edges (by port) but initially knows nothing about
/// who is on the other side.
pub type PortId = usize;

/// One entry of a vertex's adjacency list: the neighbor on a given port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Neighbor {
    /// The vertex on the other end of this port's edge.
    pub node: NodeId,
    /// The port at `node` whose edge leads back here.
    pub back_port: PortId,
    /// The global edge index of this edge.
    pub edge: EdgeId,
}

const ZERO_NEIGHBOR: Neighbor = Neighbor {
    node: 0,
    back_port: 0,
    edge: 0,
};

/// How a graph stores its edge-endpoint table.
#[derive(Debug, Clone)]
enum EdgeRepr {
    /// One `(u, v)` pair (with `u < v`) per edge, indexed by [`EdgeId`].
    Explicit(Vec<(NodeId, NodeId)>),
    /// Endpoints computed by closed form; the full list is materialized
    /// lazily and only if [`Graph::edges`] is called.
    Implicit(ImplicitEdges),
}

#[derive(Debug)]
struct ImplicitEdges {
    kind: ImplicitKind,
    m: usize,
    cache: OnceLock<Vec<(NodeId, NodeId)>>,
}

impl Clone for ImplicitEdges {
    fn clone(&self) -> Self {
        // A fresh cache: the clone re-materializes on demand rather than
        // copying a possibly-huge edge list.
        ImplicitEdges {
            kind: self.kind.clone(),
            m: self.m,
            cache: OnceLock::new(),
        }
    }
}

/// The implicit families. Each variant's edge *order* matches what the
/// corresponding explicit generator feeds `GraphBuilder`, so implicit and
/// explicit constructions of the same family are `==` (ports, edge ids, and
/// endpoints all agree) — a differential test in `gen::stream` holds this.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ImplicitKind {
    /// `C_n`, `n ≥ 3`: edge `e < n−1` is `(e, e+1)`; edge `n−1` is `(0, n−1)`.
    Cycle { n: usize },
    /// The circulant `C_n(1, …, ⌊d/2⌋ [, n/2])`: `v ~ v ± off` for
    /// `off ≤ ⌊d/2⌋`, plus the antipodal matching when `d` is odd (then `n`
    /// is even). Edges grouped by lower endpoint `v`, offsets ascending,
    /// antipodal edge last (only from `v < n/2`).
    Circulant { n: usize, d: usize },
    /// The complete `(d−1)`-ary tree laid out layer by layer: edge `e`
    /// connects child `e + 1` to its parent in the previous layer.
    /// `layer_start` has one entry per layer plus a final total-count
    /// sentinel.
    DaryTree { layer_start: Vec<usize>, d: usize },
}

impl ImplicitKind {
    /// Closed-form endpoints of edge `e`, already sorted `(u, v)`, `u < v`.
    fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        match self {
            ImplicitKind::Cycle { n } => {
                if e < n - 1 {
                    (e, e + 1)
                } else {
                    (0, n - 1)
                }
            }
            ImplicitKind::Circulant { n, d } => circulant_endpoints(*n, *d, e),
            ImplicitKind::DaryTree { layer_start, d } => {
                let child = e + 1;
                // Layer of `child`: last layer whose start is ≤ child.
                let i = layer_start.partition_point(|&s| s <= child) - 1;
                let j = child - layer_start[i];
                let per_parent = if i == 1 { *d } else { *d - 1 };
                (layer_start[i - 1] + j / per_parent, child)
            }
        }
    }
}

/// Endpoints of edge `e` of the circulant `C_n(1, …, ⌊d/2⌋ [, n/2])` under
/// the grouped-by-vertex edge order documented on [`ImplicitKind::Circulant`].
fn circulant_endpoints(n: usize, d: usize, e: EdgeId) -> (NodeId, NodeId) {
    let half_d = d / 2;
    let sorted = |v: usize, off: usize| -> (NodeId, NodeId) {
        let u = (v + off) % n;
        (v.min(u), v.max(u))
    };
    if d.is_multiple_of(2) {
        // d/2 offset-edges from every vertex.
        let v = e / half_d;
        let off = e % half_d + 1;
        sorted(v, off)
    } else {
        // Vertices below n/2 also emit their antipodal edge (after their
        // offset edges); vertices at or above n/2 emit offset edges only.
        let half_n = n / 2;
        let per_low = half_d + 1;
        let cut = half_n * per_low;
        if e < cut {
            let v = e / per_low;
            let r = e % per_low;
            if r < half_d {
                sorted(v, r + 1)
            } else {
                (v, v + half_n)
            }
        } else {
            let v = half_n + (e - cut) / half_d;
            let off = (e - cut) % half_d + 1;
            sorted(v, off)
        }
    }
}

/// An immutable simple undirected graph with port numbering.
///
/// Construct one with [`crate::GraphBuilder`] or a generator from
/// [`crate::gen`]. Self-loops and parallel edges are rejected at build time,
/// matching the paper's setting (simple graphs).
///
/// # Example
///
/// ```
/// use local_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1).len(), 2);
/// # Ok::<(), local_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`: vertex `v` owns
    /// `adj[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// Flat port-ordered adjacency, length `2m`.
    adj: Vec<Neighbor>,
    edges: EdgeRepr,
    max_degree: usize,
}

/// Build CSR adjacency from an edge iterator, replayable via `make_iter`.
///
/// Two passes: the first counts degrees into the offset table, the second
/// fills neighbor entries through per-vertex write cursors. The port
/// assignment is *definitionally* the `GraphBuilder` one — each endpoint's
/// ports follow edge order, and an entry's `back_port` is the other
/// endpoint's incidence count at the moment the edge is placed.
///
/// The iterator must yield each undirected edge exactly once with valid,
/// distinct endpoints (`u, v < n`, `u ≠ v`) — callers validate.
pub(crate) fn assemble_csr<I>(
    n: usize,
    make_iter: impl Fn() -> I,
) -> (Vec<usize>, Vec<Neighbor>, usize)
where
    I: Iterator<Item = (NodeId, NodeId)>,
{
    let mut offsets = vec![0usize; n + 1];
    let mut m = 0usize;
    for (u, v) in make_iter() {
        debug_assert!(u != v && u < n && v < n, "invalid edge ({u}, {v})");
        offsets[u + 1] += 1;
        offsets[v + 1] += 1;
        m += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    let mut adj = vec![ZERO_NEIGHBOR; 2 * m];
    for (e, (u, v)) in make_iter().enumerate() {
        let pu = cursor[u] - offsets[u];
        let pv = cursor[v] - offsets[v];
        adj[cursor[u]] = Neighbor {
            node: v,
            back_port: pv,
            edge: e,
        };
        adj[cursor[v]] = Neighbor {
            node: u,
            back_port: pu,
            edge: e,
        };
        cursor[u] += 1;
        cursor[v] += 1;
    }
    let max_degree = (0..n)
        .map(|v| offsets[v + 1] - offsets[v])
        .max()
        .unwrap_or(0);
    (offsets, adj, max_degree)
}

impl Graph {
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        adj: Vec<Neighbor>,
        edges: Vec<(NodeId, NodeId)>,
        max_degree: usize,
    ) -> Self {
        debug_assert_eq!(adj.len(), 2 * edges.len());
        Graph {
            offsets,
            adj,
            edges: EdgeRepr::Explicit(edges),
            max_degree,
        }
    }

    /// An implicit-family graph: CSR adjacency plus a closed-form edge table.
    fn from_implicit(
        offsets: Vec<usize>,
        adj: Vec<Neighbor>,
        kind: ImplicitKind,
        max_degree: usize,
    ) -> Self {
        let m = adj.len() / 2;
        Graph {
            offsets,
            adj,
            edges: EdgeRepr::Implicit(ImplicitEdges {
                kind,
                m,
                cache: OnceLock::new(),
            }),
            max_degree,
        }
    }

    /// Number of vertices `n`.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges `m`.
    pub fn m(&self) -> usize {
        match &self.edges {
            EdgeRepr::Explicit(e) => e.len(),
            EdgeRepr::Implicit(ie) => ie.m,
        }
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The neighbors of `v`, indexed by port: `neighbors(v)[p]` is the
    /// endpoint of `v`'s port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[Neighbor] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The CSR row-offset table, length `n + 1`: `v`'s neighbors (and thus
    /// its per-port message slots in the engine) live at flat indices
    /// `csr_offsets()[v]..csr_offsets()[v + 1]`.
    ///
    /// Exposed so consumers that mirror per-port state (the round engine's
    /// message plane, fault plans) can share this table instead of rebuilding
    /// it from degrees.
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The neighbor of `v` on port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `p >= deg(v)`.
    pub fn neighbor(&self, v: NodeId, p: PortId) -> Neighbor {
        assert!(p < self.degree(v), "port {p} out of range at vertex {v}");
        self.adj[self.offsets[v] + p]
    }

    /// Endpoints `(u, v)` with `u < v` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        match &self.edges {
            EdgeRepr::Explicit(edges) => edges[e],
            EdgeRepr::Implicit(ie) => {
                assert!(e < ie.m, "edge {e} out of range for m = {}", ie.m);
                ie.kind.endpoints(e)
            }
        }
    }

    /// All edges as `(u, v)` pairs with `u < v`, indexed by [`EdgeId`].
    ///
    /// For implicitly-stored families this materializes (and caches) the
    /// full list on first call — prefer [`Graph::endpoints`] in loops that
    /// only need a few edges of a huge graph.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        match &self.edges {
            EdgeRepr::Explicit(edges) => edges,
            EdgeRepr::Implicit(ie) => ie
                .cache
                .get_or_init(|| (0..ie.m).map(|e| ie.kind.endpoints(e)).collect()),
        }
    }

    /// Iterator over vertex indices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Whether `u` and `v` are adjacent. Runs in `O(min(deg u, deg v))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).iter().any(|nb| nb.node == b)
    }

    /// The port at `u` whose edge leads to `v`, if any.
    pub fn port_to(&self, u: NodeId, v: NodeId) -> Option<PortId> {
        self.neighbors(u).iter().position(|nb| nb.node == v)
    }

    /// Whether the graph is `d`-regular (every vertex has degree exactly `d`).
    pub fn is_regular(&self, d: usize) -> bool {
        self.vertices().all(|v| self.degree(v) == d)
    }

    /// Total degree check: the handshake identity `Σ deg(v) = 2m`.
    ///
    /// Always true for graphs built through [`crate::GraphBuilder`]; exposed
    /// for property tests.
    pub fn handshake_holds(&self) -> bool {
        self.adj.len() == 2 * self.m()
    }

    /// The same graph with every vertex's ports independently permuted at
    /// random — the *adversarial port numbering* device: a correct LOCAL
    /// algorithm may read port numbers but must stay correct under any
    /// assignment of them, which robustness tests check by comparing runs
    /// on `g` and `g.shuffle_ports(seed)`.
    pub fn shuffle_ports(&self, seed: u64) -> Graph {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = self.n();
        // Flat, adj-aligned permutation: port_perm[offsets[v] + old] = new.
        // One shuffle call per vertex, in vertex order — the same RNG
        // consumption as the original nested-Vec implementation, so shuffles
        // stay seed-stable across the CSR change.
        let mut port_perm = vec![0usize; self.adj.len()];
        for v in 0..n {
            let (s, e) = (self.offsets[v], self.offsets[v + 1]);
            let mut p: Vec<usize> = (0..e - s).collect();
            p.shuffle(&mut rng);
            port_perm[s..e].copy_from_slice(&p);
        }
        let mut adj = vec![ZERO_NEIGHBOR; self.adj.len()];
        for v in 0..n {
            let s = self.offsets[v];
            for (old_p, nb) in self.neighbors(v).iter().enumerate() {
                adj[s + port_perm[s + old_p]] = Neighbor {
                    node: nb.node,
                    back_port: port_perm[self.offsets[nb.node] + nb.back_port],
                    edge: nb.edge,
                };
            }
        }
        Graph {
            offsets: self.offsets.clone(),
            adj,
            edges: self.edges.clone(),
            max_degree: self.max_degree,
        }
    }
}

/// Structural equality: same port-numbered adjacency. The edge table is
/// fully determined by the adjacency (each entry carries its [`EdgeId`]), so
/// explicit and implicit storage of the same graph compare equal.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.offsets == other.offsets && self.adj == other.adj
    }
}

impl Eq for Graph {}

/// Serialized as `{"n": …, "edges": [[u, v], …]}` — the canonical edge-list
/// form, independent of adjacency storage.
impl Serialize for Graph {
    fn to_value(&self) -> Value {
        let edges = self
            .edges()
            .iter()
            .map(|&(u, v)| Value::Array(vec![Value::U64(u as u64), Value::U64(v as u64)]))
            .collect();
        Value::Object(vec![
            ("n".to_string(), Value::U64(self.n() as u64)),
            ("edges".to_string(), Value::Array(edges)),
        ])
    }
}

impl Deserialize for Graph {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = usize::from_value(v.field("n")?)?;
        let edges: Vec<(usize, usize)> = Vec::from_value(v.field("edges")?)?;
        crate::GraphBuilder::from_edges(n, edges)
            .map_err(|e| DeError(format!("invalid graph: {e}")))
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={})",
            self.n(),
            self.m(),
            self.max_degree
        )
    }
}

/// Implicit constructors used by [`crate::gen::stream`]. Kept here (not in
/// `gen`) because they are the only code allowed to pair an [`ImplicitKind`]
/// with an adjacency, and the pairing invariant lives with the types.
pub(crate) mod implicit {
    use super::*;

    /// The cycle `C_n` (`n ≥ 3`) with an implicit edge table.
    pub(crate) fn cycle(n: usize) -> Graph {
        assert!(n >= 3, "implicit cycle requires n >= 3");
        let make_iter = || (0..n).map(move |e| ImplicitKind::Cycle { n }.endpoints(e));
        let (offsets, adj, max_degree) = assemble_csr(n, make_iter);
        Graph::from_implicit(offsets, adj, ImplicitKind::Cycle { n }, max_degree)
    }

    /// The `d`-regular circulant on `n` vertices with an implicit edge
    /// table; requires `0 < d < n` and `n·d` even.
    pub(crate) fn circulant(n: usize, d: usize) -> Graph {
        assert!(
            d >= 1 && d < n && (n * d).is_multiple_of(2),
            "infeasible ({n}, {d})"
        );
        let m = n * d / 2;
        let make_iter = || (0..m).map(move |e| circulant_endpoints(n, d, e));
        let (offsets, adj, max_degree) = assemble_csr(n, make_iter);
        debug_assert_eq!(max_degree, d);
        Graph::from_implicit(offsets, adj, ImplicitKind::Circulant { n, d }, max_degree)
    }

    /// The complete `(d−1)`-ary tree over the layer layout `layer_start`
    /// (with total-count sentinel) with an implicit edge table.
    pub(crate) fn dary_tree(layer_start: Vec<usize>, d: usize) -> Graph {
        let total = *layer_start.last().expect("sentinel layer entry");
        let kind = ImplicitKind::DaryTree {
            layer_start: layer_start.clone(),
            d,
        };
        let k = kind.clone();
        let make_iter = move || {
            let k = k.clone();
            (0..total.saturating_sub(1)).map(move |e| k.endpoints(e))
        };
        let (offsets, adj, max_degree) = assemble_csr(total, make_iter);
        Graph::from_implicit(offsets, adj, kind, max_degree)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn triangle_basics() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_regular(2));
        assert!(g.handshake_holds());
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn ports_are_consistent() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build();
        for v in g.vertices() {
            for (p, nb) in g.neighbors(v).iter().enumerate() {
                let back = g.neighbor(nb.node, nb.back_port);
                assert_eq!(back.node, v, "back edge must return to origin");
                assert_eq!(back.back_port, p, "back port must be the origin port");
                assert_eq!(back.edge, nb.edge, "edge ids must agree on both sides");
            }
        }
    }

    #[test]
    fn endpoints_sorted() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        let g = b.build();
        assert_eq!(g.endpoints(0), (1, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn port_to_finds_ports() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build();
        assert_eq!(g.port_to(0, 1), Some(0));
        assert_eq!(g.port_to(0, 2), Some(1));
        assert_eq!(g.port_to(1, 0), Some(0));
        assert_eq!(g.port_to(1, 2), None);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn display_is_informative() {
        let g = GraphBuilder::new(2).build();
        let s = format!("{g}");
        assert!(s.contains("n=2"));
    }

    #[test]
    fn csr_offsets_bracket_neighbors() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(1, 3).unwrap();
        let g = b.build();
        let offsets = g.csr_offsets();
        assert_eq!(offsets.len(), g.n() + 1);
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[g.n()], 2 * g.m());
        for v in g.vertices() {
            assert_eq!(offsets[v + 1] - offsets[v], g.degree(v));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_ports() {
        use serde::{Deserialize, Serialize};
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 3).unwrap();
        b.add_edge(3, 1).unwrap();
        b.add_edge(1, 4).unwrap();
        b.add_edge(0, 4).unwrap();
        let g = b.build();
        let back = crate::Graph::from_value(&g.to_value()).unwrap();
        assert_eq!(g, back);
        assert_eq!(g.edges(), back.edges());
    }
}

#[cfg(test)]
mod shuffle_tests {
    use crate::{gen, GraphBuilder};

    #[test]
    fn shuffled_ports_stay_consistent() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let g = gen::gnp(30, 0.2, &mut rng);
        let s = g.shuffle_ports(7);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
        for v in s.vertices() {
            assert_eq!(s.degree(v), g.degree(v));
            for (p, nb) in s.neighbors(v).iter().enumerate() {
                let back = s.neighbor(nb.node, nb.back_port);
                assert_eq!(back.node, v, "shuffled back edge returns");
                assert_eq!(back.back_port, p, "shuffled back port matches");
                assert_eq!(back.edge, nb.edge);
            }
        }
        // Same edge set.
        assert_eq!(s.edges(), g.edges());
    }

    #[test]
    fn shuffle_actually_permutes_something() {
        let g = gen::star(20);
        let s = g.shuffle_ports(3);
        // The hub's neighbor order should differ with overwhelming probability.
        let orig: Vec<usize> = g.neighbors(0).iter().map(|nb| nb.node).collect();
        let perm: Vec<usize> = s.neighbors(0).iter().map(|nb| nb.node).collect();
        assert_ne!(orig, perm);
    }

    #[test]
    fn shuffle_is_seeded() {
        let g = gen::cycle(12);
        assert_eq!(g.shuffle_ports(5), g.shuffle_ports(5));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.shuffle_ports(1).n(), 0);
        let g = gen::path(2);
        let s = g.shuffle_ports(1);
        assert_eq!(s.m(), 1);
    }
}
