//! Proper edge colorings.
//!
//! The paper's Δ-sinkless-coloring and Δ-sinkless-orientation problems take a
//! Δ-regular graph *equipped with a proper Δ-edge coloring* as input. For
//! Δ-regular bipartite graphs such a coloring always exists (König's theorem);
//! [`konig`] computes one by peeling perfect matchings with Hopcroft–Karp.
//! For general graphs, [`misra_gries`] computes a (Δ+1)-edge-coloring
//! (Vizing's bound, constructively).

use crate::analysis::bipartition;
use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// A proper edge coloring: `colors[e]` is the color of edge `e`, colors are
/// `0..num_colors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeColoring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl EdgeColoring {
    /// Wrap an explicit color vector.
    ///
    /// # Panics
    ///
    /// Panics if some entry is `>= num_colors`.
    pub fn new(colors: Vec<usize>, num_colors: usize) -> Self {
        assert!(
            colors.iter().all(|&c| c < num_colors),
            "color out of palette"
        );
        EdgeColoring { colors, num_colors }
    }

    /// Color of edge `e`.
    pub fn color(&self, e: EdgeId) -> usize {
        self.colors[e]
    }

    /// Palette size.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The raw per-edge color vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.colors
    }

    /// Check properness against `g`: no two incident edges share a color.
    pub fn is_proper(&self, g: &Graph) -> bool {
        self.first_violation(g).is_none()
    }

    /// The first pair of incident same-colored edges, if any.
    pub fn first_violation(&self, g: &Graph) -> Option<(EdgeId, EdgeId)> {
        for v in g.vertices() {
            let mut seen: Vec<Option<EdgeId>> = vec![None; self.num_colors];
            for nb in g.neighbors(v) {
                let c = self.colors[nb.edge];
                if let Some(other) = seen[c] {
                    if other != nb.edge {
                        return Some((other, nb.edge));
                    }
                } else {
                    seen[c] = Some(nb.edge);
                }
            }
        }
        None
    }
}

/// Errors from edge-coloring routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EdgeColoringError {
    /// [`konig`] requires a bipartite input.
    NotBipartite,
    /// [`konig`] requires a regular input.
    NotRegular,
    /// Internal matching failure (should be impossible on valid input).
    MatchingFailed,
}

impl fmt::Display for EdgeColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeColoringError::NotBipartite => write!(f, "graph is not bipartite"),
            EdgeColoringError::NotRegular => write!(f, "graph is not regular"),
            EdgeColoringError::MatchingFailed => {
                write!(f, "perfect matching not found on regular bipartite graph")
            }
        }
    }
}

impl Error for EdgeColoringError {}

/// Hopcroft–Karp maximum matching on the subgraph of `g` whose edges have
/// `alive[e]`, restricted to left-side vertices `side[v] == 0`.
///
/// Returns `mate[v] = Some(edge)` for matched vertices.
fn hopcroft_karp(g: &Graph, side: &[u8], alive: &[bool]) -> Vec<Option<EdgeId>> {
    let n = g.n();
    let mut mate: Vec<Option<EdgeId>> = vec![None; n];
    let inf = usize::MAX;
    let mut dist = vec![inf; n];
    loop {
        // BFS from free left vertices.
        let mut queue = VecDeque::new();
        for v in g.vertices() {
            if side[v] == 0 && mate[v].is_none() {
                dist[v] = 0;
                queue.push_back(v);
            } else if side[v] == 0 {
                dist[v] = inf;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for nb in g.neighbors(u) {
                if !alive[nb.edge] {
                    continue;
                }
                let w = nb.node; // right side
                match mate[w] {
                    None => found_augmenting = true,
                    Some(me) => {
                        let (a, b) = g.endpoints(me);
                        let u2 = if side[a] == 0 { a } else { b };
                        if dist[u2] == inf {
                            dist[u2] = dist[u] + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along level graph.
        fn try_augment(
            g: &Graph,
            side: &[u8],
            alive: &[bool],
            dist: &mut [usize],
            mate: &mut [Option<EdgeId>],
            u: NodeId,
        ) -> bool {
            for p in 0..g.degree(u) {
                let nb = g.neighbor(u, p);
                if !alive[nb.edge] {
                    continue;
                }
                let w = nb.node;
                let ok = match mate[w] {
                    None => true,
                    Some(me) => {
                        let (a, b) = g.endpoints(me);
                        let u2 = if side[a] == 0 { a } else { b };
                        dist[u2] == dist[u] + 1 && try_augment(g, side, alive, dist, mate, u2)
                    }
                };
                if ok {
                    mate[u] = Some(nb.edge);
                    mate[w] = Some(nb.edge);
                    return true;
                }
            }
            dist[u] = usize::MAX;
            false
        }
        for v in 0..n {
            if side[v] == 0 && mate[v].is_none() {
                try_augment(g, side, alive, &mut dist, &mut mate, v);
            }
        }
    }
    mate
}

/// Exact `d`-edge-coloring of a `d`-regular bipartite graph (König's theorem)
/// by repeatedly extracting a perfect matching as one color class.
///
/// # Errors
///
/// * [`EdgeColoringError::NotRegular`] if the graph is not regular.
/// * [`EdgeColoringError::NotBipartite`] if the graph has an odd cycle.
/// * [`EdgeColoringError::MatchingFailed`] only on internal failure
///   (a regular bipartite graph always has a perfect matching).
///
/// # Example
///
/// ```
/// use local_graphs::{gen, edge_coloring};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = gen::random_bipartite_regular(16, 3, &mut rng)?;
/// let coloring = edge_coloring::konig(&g)?;
/// assert_eq!(coloring.num_colors(), 3);
/// assert!(coloring.is_proper(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn konig(g: &Graph) -> Result<EdgeColoring, EdgeColoringError> {
    let d = g.max_degree();
    if !g.is_regular(d) {
        return Err(EdgeColoringError::NotRegular);
    }
    let side = bipartition(g).ok_or(EdgeColoringError::NotBipartite)?;
    let mut colors = vec![usize::MAX; g.m()];
    let mut alive = vec![true; g.m()];
    for c in 0..d {
        let mate = hopcroft_karp(g, &side, &alive);
        for v in g.vertices() {
            if side[v] == 0 {
                let e = mate[v].ok_or(EdgeColoringError::MatchingFailed)?;
                colors[e] = c;
                alive[e] = false;
            }
        }
    }
    debug_assert!(colors.iter().all(|&c| c != usize::MAX));
    Ok(EdgeColoring::new(colors, d))
}

/// Misra–Gries `(Δ+1)`-edge-coloring of an arbitrary simple graph
/// (constructive Vizing bound). Runs in `O(n·m)`.
///
/// # Example
///
/// ```
/// use local_graphs::{gen, edge_coloring};
///
/// let g = gen::complete(5);
/// let coloring = edge_coloring::misra_gries(&g);
/// assert!(coloring.num_colors() <= g.max_degree() + 1);
/// assert!(coloring.is_proper(&g));
/// ```
pub fn misra_gries(g: &Graph) -> EdgeColoring {
    let delta = g.max_degree();
    let k = delta + 1; // palette {0..k-1}
    let mut color: Vec<Option<usize>> = vec![None; g.m()];

    // Smallest color not used at v.
    let free_color = |color: &[Option<usize>], v: NodeId| -> usize {
        let mut used = vec![false; k];
        for nb in g.neighbors(v) {
            if let Some(c) = color[nb.edge] {
                used[c] = true;
            }
        }
        used.iter().position(|&u| !u).expect("deg <= Δ < k colors")
    };
    let is_free = |color: &[Option<usize>], v: NodeId, c: usize| -> bool {
        g.neighbors(v).iter().all(|nb| color[nb.edge] != Some(c))
    };
    // Edge id of {u, w}.
    let edge_of = |u: NodeId, w: NodeId| -> EdgeId {
        g.neighbors(u)
            .iter()
            .find(|nb| nb.node == w)
            .expect("fan vertices are neighbors")
            .edge
    };

    for e0 in 0..g.m() {
        if color[e0].is_some() {
            continue;
        }
        let (u, v) = g.endpoints(e0);
        // Build a maximal fan of u starting at v.
        let mut fan: Vec<NodeId> = vec![v];
        let mut in_fan = vec![false; g.n()];
        in_fan[v] = true;
        loop {
            let last = *fan.last().expect("fan nonempty");
            let next = g.neighbors(u).iter().find(|nb| {
                !in_fan[nb.node] && color[nb.edge].is_some_and(|c| is_free(&color, last, c))
            });
            match next {
                Some(nb) => {
                    in_fan[nb.node] = true;
                    fan.push(nb.node);
                }
                None => break,
            }
        }
        let c = free_color(&color, u);
        let d = free_color(&color, *fan.last().expect("fan nonempty"));
        if c != d {
            // Invert the cd-path starting at u (u has no c-edge; follow d).
            let mut x = u;
            let mut want = d;
            let mut prev_edge = usize::MAX;
            loop {
                let step = g
                    .neighbors(x)
                    .iter()
                    .find(|nb| nb.edge != prev_edge && color[nb.edge] == Some(want))
                    .copied();
                match step {
                    Some(nb) => {
                        color[nb.edge] = Some(if want == c { d } else { c });
                        prev_edge = nb.edge;
                        x = nb.node;
                        want = if want == c { d } else { c };
                    }
                    None => break,
                }
            }
        }
        // After inversion d is free on u. Find a fan prefix ending at a vertex
        // where d is free, then rotate.
        let mut j = None;
        for (i, &w) in fan.iter().enumerate() {
            // Prefix validity: for i >= 1, color(u, fan[i]) must be free on
            // fan[i-1]. The inversion may have recolored edges, so re-check.
            if i >= 1 {
                let ce = color[edge_of(u, fan[i])];
                let prev = fan[i - 1];
                match ce {
                    Some(cc) if is_free(&color, prev, cc) => {}
                    _ => break,
                }
            }
            if is_free(&color, w, d) {
                j = Some(i);
            }
        }
        let j = j.expect("Misra-Gries invariant: some valid fan prefix accepts d");
        // Rotate: shift colors toward the fan start, then color (u, fan[j]) d.
        for i in 0..j {
            color[edge_of(u, fan[i])] = color[edge_of(u, fan[i + 1])];
        }
        color[edge_of(u, fan[j])] = Some(d);
    }

    let colors: Vec<usize> = color
        .into_iter()
        .map(|c| c.expect("all edges colored"))
        .collect();
    // The palette may not be fully used; report Δ+1 as the bound.
    EdgeColoring::new(colors, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn konig_on_even_cycle() {
        let g = gen::cycle(8);
        let col = konig(&g).unwrap();
        assert_eq!(col.num_colors(), 2);
        assert!(col.is_proper(&g));
    }

    #[test]
    fn konig_rejects_odd_cycle() {
        assert_eq!(konig(&gen::cycle(7)), Err(EdgeColoringError::NotBipartite));
    }

    #[test]
    fn konig_rejects_irregular() {
        let g = gen::path(4);
        assert_eq!(konig(&g), Err(EdgeColoringError::NotRegular));
    }

    #[test]
    fn konig_on_random_regular_bipartite() {
        let mut rng = StdRng::seed_from_u64(5);
        for d in 2..=5 {
            let g = gen::random_bipartite_regular(24, d, &mut rng).unwrap();
            let col = konig(&g).unwrap();
            assert_eq!(col.num_colors(), d, "d = {d}");
            assert!(col.is_proper(&g), "d = {d}");
        }
    }

    #[test]
    fn konig_on_k33() {
        let mut b = GraphBuilder::new(6);
        for u in 0..3 {
            for v in 3..6 {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        let col = konig(&g).unwrap();
        assert_eq!(col.num_colors(), 3);
        assert!(col.is_proper(&g));
    }

    #[test]
    fn misra_gries_on_complete_graphs() {
        for n in 2..=8 {
            let g = gen::complete(n);
            let col = misra_gries(&g);
            assert!(col.is_proper(&g), "K_{n}");
            assert!(col.num_colors() <= g.max_degree() + 1);
        }
    }

    #[test]
    fn misra_gries_on_odd_cycle() {
        let g = gen::cycle(9);
        let col = misra_gries(&g);
        assert!(col.is_proper(&g));
        assert_eq!(col.num_colors(), 3); // Δ+1 = 3 needed for odd cycles
    }

    #[test]
    fn misra_gries_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..8 {
            let g = gen::gnp(40, 0.15 + 0.08 * f64::from(i), &mut rng);
            let col = misra_gries(&g);
            assert!(col.is_proper(&g), "trial {i}");
        }
    }

    #[test]
    fn misra_gries_on_random_regular() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::random_regular(30, 5, &mut rng).unwrap();
        let col = misra_gries(&g);
        assert!(col.is_proper(&g));
    }

    #[test]
    fn misra_gries_on_trees_uses_delta_colors() {
        // Trees are class 1: Δ colors suffice, and Misra-Gries finds such a
        // coloring on stars trivially.
        let g = gen::star(9);
        let col = misra_gries(&g);
        assert!(col.is_proper(&g));
        let used: std::collections::HashSet<_> = col.as_slice().iter().collect();
        assert_eq!(used.len(), 8); // every edge at the hub needs its own color
    }

    #[test]
    fn violation_detection() {
        let g = gen::path(3); // edges (0,1), (1,2) share vertex 1
        let bad = EdgeColoring::new(vec![0, 0], 2);
        assert!(!bad.is_proper(&g));
        assert_eq!(bad.first_violation(&g), Some((0, 1)));
        let good = EdgeColoring::new(vec![0, 1], 2);
        assert!(good.is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn coloring_rejects_out_of_palette() {
        let _ = EdgeColoring::new(vec![3], 2);
    }

    #[test]
    fn empty_graph_colorings() {
        let g = GraphBuilder::new(4).build();
        let col = misra_gries(&g);
        assert_eq!(col.as_slice().len(), 0);
        assert!(col.is_proper(&g));
        let col = konig(&g).unwrap(); // 0-regular bipartite
        assert_eq!(col.num_colors(), 0);
    }
}
