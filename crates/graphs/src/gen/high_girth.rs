//! High-girth regular graphs by local search.
//!
//! The paper's lower bounds (Theorem 4/5) need Δ-regular graphs with girth
//! `Ω(log_Δ n)`; it cites explicit constructions (Dahan 2014, Bollobás 1978)
//! for their *existence*. Those constructions are deep algebraic objects; for
//! the experiments all we need is a concrete Δ-regular (bipartite) graph whose
//! girth we can *verify* exceeds `2t + 1` for the round counts `t` we probe.
//!
//! We therefore substitute a local search: start from a random Δ-regular
//! bipartite graph (girth already `≈ log_{Δ−1} n` in expectation) and
//! repeatedly break the shortest cycle with a 2-opt edge swap, re-verifying
//! girth. This is documented as a substitution in `DESIGN.md`.

use crate::analysis;
use crate::error::GraphError;
use crate::gen::regular::random_bipartite_regular;
use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use rand::Rng;
use std::collections::VecDeque;

/// Find one shortest cycle as a vertex sequence, or `None` in a forest.
fn shortest_cycle(g: &Graph) -> Option<Vec<NodeId>> {
    let girth = analysis::girth(g)?;
    // BFS from each vertex until we find a cycle of exactly `girth`.
    for root in g.vertices() {
        let mut dist = vec![usize::MAX; g.n()];
        let mut parent = vec![usize::MAX; g.n()];
        let mut parent_edge = vec![usize::MAX; g.n()];
        dist[root] = 0;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            if 2 * dist[u] + 1 > girth {
                break;
            }
            for nb in g.neighbors(u) {
                if nb.edge == parent_edge[u] {
                    continue;
                }
                let w = nb.node;
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent[w] = u;
                    parent_edge[w] = nb.edge;
                    queue.push_back(w);
                } else if dist[u] + dist[w] + 1 == girth {
                    // Reconstruct the cycle: path u→root, path w→root, joined.
                    let path_to_root = |mut x: NodeId| {
                        let mut p = vec![x];
                        while parent[x] != usize::MAX {
                            x = parent[x];
                            p.push(x);
                        }
                        p
                    };
                    let pu = path_to_root(u);
                    let pw = path_to_root(w);
                    // Drop the shared suffix (common ancestors).
                    let mut iu = pu.len();
                    let mut iw = pw.len();
                    while iu > 1 && iw > 1 && pu[iu - 2] == pw[iw - 2] {
                        iu -= 1;
                        iw -= 1;
                    }
                    let mut cycle: Vec<NodeId> = pu[..iu].to_vec();
                    let mut tail: Vec<NodeId> = pw[..iw - 1].to_vec();
                    tail.reverse();
                    cycle.extend(tail);
                    return Some(cycle);
                }
            }
        }
    }
    None
}

/// Generate a `d`-regular bipartite graph on `2·n_side` vertices with girth
/// at least `min_girth`, by 2-opt local search from a random sample.
///
/// Each iteration finds a shortest cycle, picks one of its edges `{a, b}` and
/// an unrelated edge `{c, d}` on the same bipartition orientation, and swaps
/// them to `{a, d}, {c, b}` — degree sequence and bipartiteness are preserved,
/// and the short cycle is destroyed (possibly creating others; the search
/// iterates until the girth target is met).
///
/// # Errors
///
/// * Propagates generator errors from [`random_bipartite_regular`].
/// * [`GraphError::RetriesExhausted`] if the swap budget runs out — the caller
///   asked for a girth that is information-theoretically too large for
///   `(n_side, d)` (the Moore bound), or was simply unlucky.
pub fn high_girth_regular(
    n_side: usize,
    d: usize,
    min_girth: usize,
    rng: &mut impl Rng,
) -> Result<Graph, GraphError> {
    let mut g = random_bipartite_regular(n_side, d, rng)?;
    if d <= 1 {
        return Ok(g); // forests: girth is infinite
    }
    let budget = 200 + 40 * n_side;
    for _ in 0..budget {
        match analysis::girth(&g) {
            None => return Ok(g),
            Some(girth) if girth >= min_girth => return Ok(g),
            Some(_) => {}
        }
        let cycle = shortest_cycle(&g).expect("girth is finite, cycle exists");
        // Edge {a, b} on the cycle, with a on the left side.
        let i = rng.gen_range(0..cycle.len());
        let (mut a, mut b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
        if a >= n_side {
            std::mem::swap(&mut a, &mut b);
        }
        debug_assert!(a < n_side && b >= n_side);
        // Random other edge {c, d} with c on the left; retry a few times to
        // find a swap that keeps the graph simple.
        let mut swapped = false;
        for _ in 0..32 {
            let e = rng.gen_range(0..g.m());
            let (mut c, mut dd) = g.endpoints(e);
            if c >= n_side {
                std::mem::swap(&mut c, &mut dd);
            }
            if c == a || dd == b || g.has_edge(a, dd) || g.has_edge(c, b) {
                continue;
            }
            // Rebuild with the swap applied.
            let mut builder = GraphBuilder::new(g.n());
            for &(u, v) in g.edges() {
                let (uu, vv) = if (u.min(v), u.max(v)) == (a.min(b), a.max(b)) {
                    (a, dd)
                } else if (u.min(v), u.max(v)) == (c.min(dd), c.max(dd)) {
                    (c, b)
                } else {
                    (u, v)
                };
                builder.add_edge(uu, vv).expect("swap keeps graph simple");
            }
            g = builder.build();
            swapped = true;
            break;
        }
        if !swapped {
            // Could not find a compatible partner edge; resample wholesale.
            g = random_bipartite_regular(n_side, d, rng)?;
        }
    }
    Err(GraphError::RetriesExhausted {
        what: format!("girth >= {min_girth} on {d}-regular bipartite, n_side={n_side}"),
        attempts: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn achieves_requested_girth() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = high_girth_regular(64, 3, 6, &mut rng).unwrap();
        assert!(g.is_regular(3));
        assert!(analysis::girth(&g).unwrap_or(usize::MAX) >= 6);
        assert!(analysis::bipartition(&g).is_some());
    }

    #[test]
    fn achieves_girth_eight_on_larger_instance() {
        let mut rng = StdRng::seed_from_u64(78);
        let g = high_girth_regular(200, 3, 8, &mut rng).unwrap();
        assert!(g.is_regular(3));
        assert!(analysis::girth(&g).unwrap_or(usize::MAX) >= 8);
    }

    #[test]
    fn degree_one_returns_matching() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = high_girth_regular(10, 1, 100, &mut rng).unwrap();
        assert!(g.is_regular(1));
        assert_eq!(analysis::girth(&g), None);
    }

    #[test]
    fn impossible_girth_errors_out() {
        // K_{3,3} is forced at n_side = 3, d = 3: girth is 4, and no
        // 3-regular bipartite graph on 6 vertices has girth >= 100.
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            high_girth_regular(3, 3, 100, &mut rng),
            Err(GraphError::RetriesExhausted { .. })
        ));
    }

    #[test]
    fn shortest_cycle_matches_girth() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = random_bipartite_regular(20, 3, &mut rng).unwrap();
        let girth = analysis::girth(&g).expect("3-regular has cycles");
        let cyc = shortest_cycle(&g).expect("cycle exists");
        assert_eq!(cyc.len(), girth);
        // Consecutive cycle vertices must be adjacent (including wraparound).
        for i in 0..cyc.len() {
            assert!(
                g.has_edge(cyc[i], cyc[(i + 1) % cyc.len()]),
                "cycle edge {i} missing"
            );
        }
        // All distinct.
        let set: std::collections::HashSet<_> = cyc.iter().collect();
        assert_eq!(set.len(), cyc.len());
    }
}
