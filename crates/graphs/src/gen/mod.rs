//! Graph generators for every family the experiments sweep over.
//!
//! Deterministic families: [`path`], [`cycle`], [`complete`], [`star`],
//! [`grid`], [`complete_dary_tree`].
//!
//! Random families (take an explicit RNG for reproducibility):
//! [`random_tree`], [`random_tree_max_degree`], [`gnp`], [`random_regular`],
//! [`random_bipartite_regular`], [`high_girth_regular`].
//!
//! Streaming constructors for huge instances (no materialized edge list):
//! [`stream::cycle`], [`stream::circulant`], [`stream::complete_dary_tree`].

mod classic;
mod edge_set;
mod high_girth;
mod regular;
pub mod stream;
mod trees;

pub use classic::{complete, complete_bipartite, cycle, gnp, grid, path, star};
pub use high_girth::high_girth_regular;
pub use regular::{random_bipartite_regular, random_regular};
pub use trees::{broom, caterpillar, complete_dary_tree, random_tree, random_tree_max_degree};
