//! Random regular and bipartite-regular graph generators.
//!
//! Sampling strategy: build a deterministic `d`-regular base graph (a
//! circulant), then randomize with `Θ(n·d)` double-edge swaps (the standard
//! switch-chain MCMC). Unlike the configuration model this never rejects, so
//! it works for every feasible `(n, d)` — including the small dense cases the
//! tests and toy experiments use.

use super::edge_set::EdgeSet;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Number of switch-chain steps used to randomize a base graph with `m`
/// edges: `16` proposed swaps per edge (plus a floor for tiny graphs).
///
/// The chain mixes in `O(m)` steps for the regular degree sequences used
/// here; 16 passes is comfortably past the empirical mixing point (edge-set
/// overlap with the base graph stops decreasing after ~4 passes) while
/// keeping generation linear in `m` — the previous constant, `40` swaps per
/// edge expressed as `20·n·d`, made generation dominate engine time at
/// `n ≥ 1M` for no extra mixing.
fn mixing_steps(m: usize) -> usize {
    16 * m + 64
}

fn key(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

/// Apply `steps` random double-edge swaps to `edges`, preserving the degree
/// sequence, simplicity, and — when `bipartite_split` is set — the property
/// that every edge crosses the split (left endpoints `< split`).
fn switch_chain(
    edges: &mut [(usize, usize)],
    seen: &mut EdgeSet,
    steps: usize,
    bipartite_split: Option<usize>,
    rng: &mut impl Rng,
) {
    let m = edges.len();
    if m < 2 {
        return;
    }
    for _ in 0..steps {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (mut a, mut b) = edges[i];
        let (mut c, mut d) = edges[j];
        match bipartite_split {
            Some(split) => {
                // Orient both edges left→right so the swap stays bipartite.
                if a >= split {
                    std::mem::swap(&mut a, &mut b);
                }
                if c >= split {
                    std::mem::swap(&mut c, &mut d);
                }
            }
            None => {
                // Randomly flip one edge's orientation for symmetry of the chain.
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut c, &mut d);
                }
            }
        }
        // Proposed swap: {a,b},{c,d} → {a,d},{c,b}.
        if a == d || c == b {
            continue;
        }
        let ad = key(a, d);
        let cb = key(c, b);
        if seen.contains(a, d) || seen.contains(c, b) || ad == cb {
            continue;
        }
        seen.remove(a, b);
        seen.remove(c, d);
        seen.insert(a, d);
        seen.insert(c, b);
        edges[i] = ad;
        edges[j] = cb;
    }
}

/// Random `d`-regular graph on `n` vertices: a circulant base randomized by
/// the switch chain.
///
/// # Errors
///
/// [`GraphError::InfeasibleParameters`] if `n·d` is odd or `d ≥ n`.
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Result<Graph, GraphError> {
    if d == 0 {
        return Ok(GraphBuilder::new(n).build());
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("n*d = {n}*{d} is odd"),
        });
    }
    if d >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("d = {d} >= n = {n}"),
        });
    }
    // Circulant base: connect v to v±1, …, v±⌊d/2⌋; if d is odd, also v+n/2
    // (n is even in that case because n·d is even).
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    let mut seen = EdgeSet::with_capacity(n * d / 2);
    for v in 0..n {
        for off in 1..=(d / 2) {
            let u = (v + off) % n;
            if seen.insert(v, u) {
                edges.push(key(v, u));
            }
        }
        if d % 2 == 1 {
            let u = (v + n / 2) % n;
            if seen.insert(v, u) {
                edges.push(key(v, u));
            }
        }
    }
    debug_assert_eq!(edges.len(), n * d / 2);
    let steps = mixing_steps(edges.len());
    switch_chain(&mut edges, &mut seen, steps, None, rng);
    // The chain maintains simplicity and normalization exactly (the EdgeSet
    // mirrors `edges` at every step), so skip builder re-validation.
    Ok(GraphBuilder::from_edges_unchecked(n, edges))
}

/// Random `d`-regular bipartite graph with `n_side` vertices on each side
/// (vertices `0..n_side` on the left, `n_side..2·n_side` on the right): a
/// bipartite circulant base randomized by the bipartiteness-preserving switch
/// chain.
///
/// These are the lower-bound instances of Theorem 4: bipartite Δ-regular
/// graphs are trivially Δ-edge-colorable (see [`crate::edge_coloring::konig`])
/// and any Δ-coloring of such a graph is a valid Δ-sinkless coloring.
///
/// # Errors
///
/// [`GraphError::InfeasibleParameters`] if `d > n_side`.
pub fn random_bipartite_regular(
    n_side: usize,
    d: usize,
    rng: &mut impl Rng,
) -> Result<Graph, GraphError> {
    if d > n_side {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("d = {d} > n_side = {n_side}"),
        });
    }
    // Base: left u ↔ right (u + j) mod n_side for j = 0..d.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(n_side * d);
    let mut seen = EdgeSet::with_capacity(n_side * d);
    for u in 0..n_side {
        for j in 0..d {
            let v = n_side + (u + j) % n_side;
            seen.insert(u, v);
            edges.push(key(u, v));
        }
    }
    let steps = mixing_steps(edges.len());
    switch_chain(&mut edges, &mut seen, steps, Some(n_side), rng);
    Ok(GraphBuilder::from_edges_unchecked(2 * n_side, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regular_degrees() {
        let mut rng = StdRng::seed_from_u64(11);
        for (n, d) in [(10, 3), (20, 4), (16, 5), (50, 3), (8, 7)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert!(g.is_regular(d), "n={n} d={d}");
            assert!(g.handshake_holds());
        }
    }

    #[test]
    fn regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            random_regular(5, 3, &mut rng),
            Err(GraphError::InfeasibleParameters { .. })
        ));
    }

    #[test]
    fn regular_rejects_d_ge_n() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            random_regular(4, 4, &mut rng),
            Err(GraphError::InfeasibleParameters { .. })
        ));
    }

    #[test]
    fn regular_d_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_regular(7, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn regular_reproducible() {
        let a = random_regular(30, 3, &mut StdRng::seed_from_u64(2)).unwrap();
        let b = random_regular(30, 3, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn regular_samples_differ_across_seeds() {
        let a = random_regular(30, 3, &mut StdRng::seed_from_u64(2)).unwrap();
        let b = random_regular(30, 3, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_ne!(a, b, "switch chain should actually randomize");
    }

    #[test]
    fn bipartite_regular_structure() {
        let mut rng = StdRng::seed_from_u64(13);
        for (ns, d) in [(8, 3), (20, 4), (30, 5), (6, 6)] {
            let g = random_bipartite_regular(ns, d, &mut rng).unwrap();
            assert_eq!(g.n(), 2 * ns);
            assert!(g.is_regular(d), "ns={ns} d={d}");
            let side = analysis::bipartition(&g).expect("must be bipartite");
            for &(u, v) in g.edges() {
                assert_ne!(side[u], side[v]);
            }
        }
    }

    #[test]
    fn bipartite_regular_edges_cross_sides() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = random_bipartite_regular(10, 3, &mut rng).unwrap();
        for &(u, v) in g.edges() {
            assert!(
                u < 10 && v >= 10,
                "edge ({u},{v}) must cross the bipartition"
            );
        }
    }

    #[test]
    fn bipartite_regular_rejects_large_d() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_bipartite_regular(3, 4, &mut rng).is_err());
    }

    #[test]
    fn bipartite_full_d_is_complete_bipartite() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_bipartite_regular(4, 4, &mut rng).unwrap();
        assert_eq!(g.m(), 16);
        for u in 0..4 {
            for v in 4..8 {
                assert!(g.has_edge(u, v));
            }
        }
    }
}
