//! Tree generators: the workloads for the paper's Δ-coloring experiments.

use crate::graph::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// Uniform random labeled tree on `n` vertices via a random Prüfer sequence.
///
/// Degrees are unbounded (expected max degree `Θ(log n / log log n)`); use
/// [`random_tree_max_degree`] when a degree cap Δ is part of the experiment.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    if n <= 1 {
        return GraphBuilder::new(n).build();
    }
    if n == 2 {
        return GraphBuilder::from_edges(2, [(0, 1)]).expect("single edge");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard O(n log n) decoding with a min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree always has a leaf");
        b.add_edge(leaf, p).expect("prufer edges are unique");
        degree[p] -= 1;
        if degree[p] == 1 {
            leaves.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two leaves remain");
    b.add_edge(u, v).expect("final edge is unique");
    b.build()
}

/// Random tree on `n` vertices with maximum degree at most `delta`, grown by
/// random attachment among vertices that still have spare degree.
///
/// The result is connected, acyclic, and satisfies `Δ(G) ≤ delta`. For
/// `delta ≥ 3` and large `n` the maximum degree is typically exactly `delta`.
///
/// # Panics
///
/// Panics if `delta < 2` and `n > 2` (no such tree exists).
pub fn random_tree_max_degree(n: usize, delta: usize, rng: &mut impl Rng) -> Graph {
    if n > 2 {
        assert!(delta >= 2, "a tree on {n} > 2 vertices needs delta >= 2");
    }
    let mut b = GraphBuilder::new(n);
    if n <= 1 {
        return b.build();
    }
    // `open[i]` = vertices with residual capacity; attach each new vertex to a
    // uniformly random open one.
    let mut capacity = vec![0usize; n];
    let mut open: Vec<usize> = vec![0];
    capacity[0] = delta;
    for v in 1..n {
        let idx = rng.gen_range(0..open.len());
        let parent = open[idx];
        b.add_edge(parent, v).expect("attachment edges are unique");
        capacity[parent] -= 1;
        if capacity[parent] == 0 {
            open.swap_remove(idx);
        }
        capacity[v] = delta - 1;
        if capacity[v] > 0 {
            open.push(v);
        }
    }
    b.build()
}

/// The complete `(d−1)`-ary tree of maximum degree `d` with at least `n_min`
/// vertices: the root has `d` children, internal vertices have `d − 1`
/// children, all leaves at equal depth.
///
/// This is the "complete regular tree" whose diameter realizes the
/// `Ω(log_Δ n)` bound discussed after Theorem 6. The actual vertex count is
/// returned implicitly via `Graph::n()`.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn complete_dary_tree(n_min: usize, d: usize) -> Graph {
    assert!(d >= 2, "complete_dary_tree requires d >= 2");
    // Depth 0: 1 vertex (root). Depth 1: d vertices. Depth k≥2: d(d−1)^(k−1).
    let mut layers: Vec<usize> = vec![1];
    let mut total = 1usize;
    while total < n_min {
        let next = if layers.len() == 1 {
            d
        } else {
            layers.last().expect("nonempty") * (d - 1)
        };
        layers.push(next);
        total += next;
    }
    let mut b = GraphBuilder::new(total);
    // Assign vertex ids layer by layer.
    let mut layer_start = vec![0usize; layers.len()];
    for i in 1..layers.len() {
        layer_start[i] = layer_start[i - 1] + layers[i - 1];
    }
    for i in 1..layers.len() {
        let per_parent = if i == 1 { d } else { d - 1 };
        for j in 0..layers[i] {
            let child = layer_start[i] + j;
            let parent = layer_start[i - 1] + j / per_parent;
            b.add_edge(parent, child).expect("tree edges are unique");
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves. Diameter `Θ(spine)` with maximum degree `legs + 2` —
/// the *deep* tree family used by adversarial-ID workloads, where random
/// attachment trees would only be `O(log n)` deep.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "caterpillar needs a spine");
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge(v - 1, v).expect("spine edges are unique");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l)
                .expect("leg edges are unique");
        }
    }
    b.build()
}

/// A broom: a path of `handle` vertices with `bristles` extra leaves
/// attached to its last vertex. Deep *and* locally dense at one end.
///
/// # Panics
///
/// Panics if `handle == 0`.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle > 0, "broom needs a handle");
    let n = handle + bristles;
    let mut b = GraphBuilder::new(n);
    for v in 1..handle {
        b.add_edge(v - 1, v).expect("handle edges are unique");
    }
    for l in 0..bristles {
        b.add_edge(handle - 1, handle + l)
            .expect("bristle edges are unique");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 10, 100, 500] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.n(), n);
            if n > 0 {
                assert!(analysis::is_tree(&g), "n={n}");
            }
        }
    }

    #[test]
    fn random_tree_reproducible() {
        let a = random_tree(64, &mut StdRng::seed_from_u64(5));
        let b = random_tree(64, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn degree_capped_tree_respects_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        for delta in [2usize, 3, 5, 16] {
            let g = random_tree_max_degree(300, delta, &mut rng);
            assert!(analysis::is_tree(&g));
            assert!(g.max_degree() <= delta, "delta={delta}");
        }
    }

    #[test]
    fn degree_capped_tree_small_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(random_tree_max_degree(0, 3, &mut rng).n(), 0);
        assert_eq!(random_tree_max_degree(1, 3, &mut rng).m(), 0);
        assert_eq!(random_tree_max_degree(2, 2, &mut rng).m(), 1);
    }

    #[test]
    fn delta_two_cap_gives_path() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_tree_max_degree(50, 2, &mut rng);
        assert!(analysis::is_tree(&g));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(analysis::diameter(&g), Some(49));
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(10, 3);
        assert_eq!(g.n(), 40);
        assert!(analysis::is_tree(&g));
        assert_eq!(g.max_degree(), 5); // interior spine: 2 spine + 3 legs
        assert_eq!(analysis::diameter(&g), Some(11)); // leaf-spine...spine-leaf
    }

    #[test]
    fn caterpillar_no_legs_is_path() {
        let g = caterpillar(7, 0);
        assert_eq!(g.n(), 7);
        assert_eq!(analysis::diameter(&g), Some(6));
    }

    #[test]
    fn broom_structure() {
        let g = broom(12, 5);
        assert_eq!(g.n(), 17);
        assert!(analysis::is_tree(&g));
        assert_eq!(g.degree(11), 1 + 5);
        assert_eq!(analysis::diameter(&g), Some(12));
    }

    #[test]
    fn complete_dary_structure() {
        let g = complete_dary_tree(1, 3); // just the root
        assert_eq!(g.n(), 1);
        let g = complete_dary_tree(2, 3); // root + 3 children
        assert_eq!(g.n(), 4);
        assert_eq!(g.degree(0), 3);
        let g = complete_dary_tree(5, 3); // next layer: 3*2 = 6 more
        assert_eq!(g.n(), 10);
        assert!(analysis::is_tree(&g));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn complete_dary_internal_degrees() {
        let g = complete_dary_tree(100, 4);
        assert!(analysis::is_tree(&g));
        assert_eq!(g.max_degree(), 4);
        // Every non-leaf non-root vertex has degree exactly 4.
        let dmax = analysis::bfs_distances(&g, 0)
            .into_iter()
            .max()
            .expect("nonempty");
        let dist = analysis::bfs_distances(&g, 0);
        for v in g.vertices() {
            if v != 0 && dist[v] < dmax {
                assert_eq!(g.degree(v), 4, "internal vertex {v}");
            }
        }
    }
}
