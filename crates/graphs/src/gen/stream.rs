//! Streaming constructors for the regular families the large-`n` sweeps use.
//!
//! These build the CSR adjacency directly from a closed-form edge iterator —
//! no `GraphBuilder`, no edge `HashSet`, and (thanks to the implicit edge
//! representation in [`Graph`]) no materialized `(u, v)` list. At 100M
//! vertices that removes the builder's per-edge hashing and halves peak
//! memory; the adjacency itself is still resident, which is what the round
//! engine needs.
//!
//! Every streaming constructor produces a graph `==` to its explicit
//! counterpart (same ports, edge ids, and endpoints); differential tests
//! below pin that, so algorithms may mix the two freely.

use crate::error::GraphError;
use crate::graph::implicit;
use crate::graph::Graph;

/// The cycle `C_n`, structurally identical to [`crate::gen::cycle`] but with
/// an implicit edge table (`n < 3` falls back to the explicit path).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return super::path(n);
    }
    implicit::cycle(n)
}

/// The `d`-regular circulant `C_n(1, …, ⌊d/2⌋ [, n/2])` — the deterministic
/// Δ-regular workload for scaling runs, and the base graph of the
/// [`crate::gen::random_regular`] switch chain.
///
/// # Errors
///
/// [`GraphError::InfeasibleParameters`] if `n·d` is odd or `d ≥ n`.
pub fn circulant(n: usize, d: usize) -> Result<Graph, GraphError> {
    if d == 0 {
        return Ok(crate::GraphBuilder::new(n).build());
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("n*d = {n}*{d} is odd"),
        });
    }
    if d >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("d = {d} >= n = {n}"),
        });
    }
    Ok(implicit::circulant(n, d))
}

/// The complete `(d−1)`-ary tree of maximum degree `d` with at least `n_min`
/// vertices, structurally identical to [`crate::gen::complete_dary_tree`]
/// but streamed: the layer layout is computed arithmetically and edges come
/// from the closed form "edge `e` joins vertex `e + 1` to its parent".
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn complete_dary_tree(n_min: usize, d: usize) -> Graph {
    assert!(d >= 2, "complete_dary_tree requires d >= 2");
    // Depth 0: 1 vertex (root). Depth 1: d. Depth k≥2: d(d−1)^(k−1).
    // (Mirrors the explicit generator's layer computation exactly.)
    let mut layers: Vec<usize> = vec![1];
    let mut total = 1usize;
    while total < n_min {
        let next = if layers.len() == 1 {
            d
        } else {
            layers.last().expect("nonempty") * (d - 1)
        };
        layers.push(next);
        total += next;
    }
    let mut layer_start = vec![0usize; layers.len() + 1];
    for (i, &sz) in layers.iter().enumerate() {
        layer_start[i + 1] = layer_start[i] + sz;
    }
    implicit::dary_tree(layer_start, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn cycle_matches_builder() {
        for n in [0, 1, 2, 3, 4, 7, 64, 257] {
            assert_eq!(cycle(n), gen::cycle(n), "n = {n}");
        }
    }

    #[test]
    fn cycle_edges_match_builder() {
        for n in [3, 5, 12] {
            assert_eq!(cycle(n).edges(), gen::cycle(n).edges(), "n = {n}");
        }
    }

    #[test]
    fn circulant_is_regular_and_consistent() {
        for (n, d) in [(8, 2), (8, 3), (9, 4), (10, 5), (12, 6), (64, 7), (8, 1)] {
            let g = circulant(n, d).unwrap();
            assert!(g.is_regular(d), "(n, d) = ({n}, {d})");
            assert!(g.handshake_holds());
            for v in g.vertices() {
                for (p, nb) in g.neighbors(v).iter().enumerate() {
                    let back = g.neighbor(nb.node, nb.back_port);
                    assert_eq!((back.node, back.back_port, back.edge), (v, p, nb.edge));
                    let (a, b) = g.endpoints(nb.edge);
                    assert_eq!((a.min(b), a.max(b)), (v.min(nb.node), v.max(nb.node)));
                }
            }
        }
    }

    #[test]
    fn circulant_matches_switch_chain_base() {
        // The circulant is exactly random_regular's base graph before any
        // swaps: zero mixing steps can't happen through the public API, but
        // the edge *set* must agree — check endpoints as sets.
        for (n, d) in [(10, 3), (20, 4), (16, 5), (8, 7)] {
            let g = circulant(n, d).unwrap();
            let mut ours: Vec<_> = g.edges().to_vec();
            ours.sort_unstable();
            let mut base: Vec<(usize, usize)> = Vec::new();
            for v in 0..n {
                for off in 1..=(d / 2) {
                    let u = (v + off) % n;
                    let k = (v.min(u), v.max(u));
                    if !base.contains(&k) {
                        base.push(k);
                    }
                }
                if d % 2 == 1 {
                    let u = (v + n / 2) % n;
                    let k = (v.min(u), v.max(u));
                    if !base.contains(&k) {
                        base.push(k);
                    }
                }
            }
            base.sort_unstable();
            assert_eq!(ours, base, "(n, d) = ({n}, {d})");
        }
    }

    #[test]
    fn circulant_rejects_infeasible() {
        assert!(circulant(5, 3).is_err(), "odd n*d");
        assert!(circulant(4, 4).is_err(), "d >= n");
        assert_eq!(circulant(5, 0).unwrap().m(), 0);
    }

    #[test]
    fn dary_tree_matches_builder() {
        for (n_min, d) in [(1, 2), (10, 2), (40, 3), (100, 4), (500, 5)] {
            let a = complete_dary_tree(n_min, d);
            let b = gen::complete_dary_tree(n_min, d);
            assert_eq!(a, b, "(n_min, d) = ({n_min}, {d})");
            assert_eq!(a.edges(), b.edges());
            assert_eq!(a.max_degree(), b.max_degree());
        }
    }

    #[test]
    fn endpoints_agree_with_edge_list() {
        let g = circulant(30, 5).unwrap();
        let edges = g.edges().to_vec();
        for (e, &pair) in edges.iter().enumerate() {
            assert_eq!(g.endpoints(e), pair);
        }
        let t = complete_dary_tree(200, 3);
        let edges = t.edges().to_vec();
        for (e, &pair) in edges.iter().enumerate() {
            assert_eq!(t.endpoints(e), pair);
        }
    }
}
