//! Deterministic classic families and G(n, p).

use crate::graph::Graph;
use crate::GraphBuilder;
use rand::Rng;

/// The path `P_n` on vertices `0 — 1 — … — n−1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are unique");
    }
    b.build()
}

/// The cycle `C_n` (requires `n ≥ 3`; smaller `n` yields a path).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).expect("cycle edges are unique");
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete edges are unique");
        }
    }
    b.build()
}

/// The star `K_{1,n−1}` with center 0.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are unique");
    }
    b.build()
}

/// The `w × h` grid graph (max degree 4).
pub fn grid(w: usize, h: usize) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y)).expect("unique");
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1)).expect("unique");
            }
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` (left side `0..a`, right side
/// `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("each pair once");
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` possible edges included
/// independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("each pair visited once");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
        assert!(analysis::is_tree(&g));
    }

    #[test]
    fn cycle_is_two_regular() {
        let g = cycle(9);
        assert!(g.is_regular(2));
        assert_eq!(g.m(), 9);
        assert!(analysis::is_connected(&g));
    }

    #[test]
    fn small_cycle_degenerates_to_path() {
        assert_eq!(cycle(2).m(), 1);
        assert_eq!(cycle(1).m(), 0);
        assert_eq!(cycle(0).n(), 0);
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).m(), 15);
        assert!(complete(6).is_regular(5));
    }

    #[test]
    fn star_degrees() {
        let g = star(8);
        assert_eq!(g.degree(0), 7);
        for v in 1..8 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert_eq!(g.max_degree(), 4);
        assert!(analysis::is_connected(&g));
        assert_eq!(analysis::girth(&g), Some(4));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn gnp_is_reproducible() {
        let g1 = gnp(30, 0.2, &mut StdRng::seed_from_u64(7));
        let g2 = gnp(30, 0.2, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gnp(5, 1.5, &mut rng);
    }
}
