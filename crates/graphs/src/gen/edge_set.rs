//! A flat open-addressing membership set for undirected edges.
//!
//! The switch-chain sampler needs only three operations — `contains`,
//! `insert`, `remove` — over keys that are pairs of `u32`-sized vertex
//! indices. `std::collections::HashSet<(usize, usize)>` serves, but at
//! `n ≥ 1M` its SipHash and per-entry overhead make *generation* dominate
//! engine time and roughly double peak memory. This set packs each edge into
//! one `u64`, hashes with `splitmix64`, probes linearly, and deletes with
//! backward-shift (no tombstones), so the table stays a single flat `Vec<u64>`
//! at a fixed ≤ 50% load factor.

/// Sentinel for an empty slot; never a valid key because a packed edge has
/// `u < v`, so the all-ones pattern (`u = v = u32::MAX`) cannot occur.
const EMPTY: u64 = u64::MAX;

/// SplitMix64 finalizer — a full-avalanche multiply-xor-shift mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Membership set of normalized undirected edges `{u, v}`, `u ≠ v`.
#[derive(Debug, Clone)]
pub(crate) struct EdgeSet {
    slots: Vec<u64>,
    mask: usize,
    len: usize,
}

impl EdgeSet {
    /// A set sized for `capacity` edges at ≤ 50% load (table length is the
    /// next power of two ≥ `2 · capacity`).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let table = (2 * capacity).next_power_of_two().max(8);
        EdgeSet {
            slots: vec![EMPTY; table],
            mask: table - 1,
            len: 0,
        }
    }

    /// Pack `{u, v}` into the canonical `u64` key.
    ///
    /// # Panics
    ///
    /// Debug-panics on self-loops or endpoints ≥ 2³² − 1.
    fn key(u: usize, v: usize) -> u64 {
        debug_assert!(u != v, "self-loop {{{u}, {u}}}");
        debug_assert!(u.max(v) < u32::MAX as usize, "vertex index exceeds u32");
        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
        (a << 32) | b
    }

    /// Number of edges in the set.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether `{u, v}` is in the set.
    pub(crate) fn contains(&self, u: usize, v: usize) -> bool {
        let key = Self::key(u, v);
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            match self.slots[i] {
                k if k == key => return true,
                EMPTY => return false,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Insert `{u, v}`; returns `false` if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if the insert would push the table past half full — callers
    /// size the set for their maximum edge count up front, so growth is a
    /// logic error, not an expected path.
    pub(crate) fn insert(&mut self, u: usize, v: usize) -> bool {
        let key = Self::key(u, v);
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            match self.slots[i] {
                k if k == key => return false,
                EMPTY => {
                    assert!(
                        2 * (self.len + 1) <= self.slots.len(),
                        "EdgeSet over capacity"
                    );
                    self.slots[i] = key;
                    self.len += 1;
                    return true;
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Remove `{u, v}`; returns `false` if it was absent.
    ///
    /// Uses backward-shift deletion: subsequent probe-chain entries slide
    /// back over the hole so lookups never need tombstones.
    pub(crate) fn remove(&mut self, u: usize, v: usize) -> bool {
        let key = Self::key(u, v);
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            match self.slots[i] {
                k if k == key => break,
                EMPTY => return false,
                _ => i = (i + 1) & self.mask,
            }
        }
        // Backward shift: walk the cluster after `i`; any entry whose ideal
        // slot is at or before the hole (cyclically) moves into it.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        while self.slots[j] != EMPTY {
            let ideal = (mix(self.slots[j]) as usize) & self.mask;
            // Distance from ideal to j vs from hole to j (cyclic): if the
            // entry's ideal position does not lie strictly inside
            // (hole, j], it may legally occupy the hole.
            let dist_ideal = (j.wrapping_sub(ideal)) & self.mask;
            let dist_hole = (j.wrapping_sub(hole)) & self.mask;
            if dist_ideal >= dist_hole {
                self.slots[hole] = self.slots[j];
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn basic_ops() {
        let mut s = EdgeSet::with_capacity(4);
        assert!(s.insert(3, 1));
        assert!(!s.insert(1, 3), "normalized duplicate");
        assert!(s.contains(1, 3));
        assert!(s.contains(3, 1));
        assert!(!s.contains(1, 2));
        assert!(s.remove(3, 1));
        assert!(!s.remove(3, 1));
        assert!(!s.contains(1, 3));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn differential_against_std_hashset() {
        // Randomized insert/remove/contains mirror: the EdgeSet must agree
        // with HashSet on every operation, across enough ops to exercise
        // collision clusters and backward shifts.
        let mut rng = StdRng::seed_from_u64(42);
        let mut ours = EdgeSet::with_capacity(600);
        let mut reference: HashSet<(usize, usize)> = HashSet::new();
        for _ in 0..20_000 {
            let u = rng.gen_range(0..40usize);
            let mut v = rng.gen_range(0..40usize);
            if u == v {
                v = (v + 1) % 40;
            }
            let k = (u.min(v), u.max(v));
            match rng.gen_range(0..3) {
                0 => assert_eq!(ours.insert(u, v), reference.insert(k)),
                1 => assert_eq!(ours.remove(u, v), reference.remove(&k)),
                _ => assert_eq!(ours.contains(u, v), reference.contains(&k)),
            }
            assert_eq!(ours.len(), reference.len());
        }
        for &(u, v) in &reference {
            assert!(ours.contains(u, v));
        }
    }

    #[test]
    fn fills_to_declared_capacity() {
        let mut s = EdgeSet::with_capacity(100);
        for v in 1..=100 {
            assert!(s.insert(0, v));
        }
        assert_eq!(s.len(), 100);
        for v in 1..=100 {
            assert!(s.contains(0, v));
        }
    }
}
