//! Structural analysis: BFS, components, diameter, girth, bipartition,
//! power graphs.
//!
//! The girth computation matters for the paper's lower bounds: Theorems 4–5
//! require Δ-regular graphs of girth `Ω(log_Δ n)`, and the indistinguishability
//! argument needs `t < (g−1)/2`. We compute girth *exactly* so experiments can
//! verify the precondition instead of assuming it.

use crate::graph::{Graph, NodeId};
use crate::GraphBuilder;
use std::collections::VecDeque;

/// BFS distances from `src`; unreachable vertices get `usize::MAX`.
///
/// # Panics
///
/// Panics if `src >= g.n()`.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for nb in g.neighbors(u) {
            if dist[nb.node] == usize::MAX {
                dist[nb.node] = dist[u] + 1;
                queue.push_back(nb.node);
            }
        }
    }
    dist
}

/// Connected components as a vector of vertex lists; each vertex appears in
/// exactly one component. Components are listed in order of their smallest
/// vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut comp_of = vec![usize::MAX; g.n()];
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    for start in g.vertices() {
        if comp_of[start] != usize::MAX {
            continue;
        }
        let c = comps.len();
        let mut members = vec![start];
        comp_of[start] = c;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for nb in g.neighbors(u) {
                if comp_of[nb.node] == usize::MAX {
                    comp_of[nb.node] = c;
                    members.push(nb.node);
                    queue.push_back(nb.node);
                }
            }
        }
        comps.push(members);
    }
    comps
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != usize::MAX)
}

/// Exact diameter, or `None` if the graph is disconnected or empty.
///
/// Runs one BFS per vertex: `O(n (n + m))`. Fine for the experiment scales
/// where diameter matters (lower-bound instances); avoid on huge graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.vertices() {
        let d = bfs_distances(g, v);
        let ecc = *d.iter().max().expect("nonempty");
        if ecc == usize::MAX {
            return None;
        }
        best = best.max(ecc);
    }
    Some(best)
}

/// Whether the graph is a tree: connected with `m = n − 1`.
pub fn is_tree(g: &Graph) -> bool {
    g.n() > 0 && g.m() == g.n() - 1 && is_connected(g)
}

/// Whether the graph is a forest (acyclic).
pub fn is_forest(g: &Graph) -> bool {
    let comps = connected_components(g);
    // A graph is a forest iff m = n - (#components).
    g.m() + comps.len() == g.n()
}

/// Exact girth (length of the shortest cycle), or `None` for forests.
///
/// Algorithm: BFS from every vertex `v`; the first non-tree edge encountered
/// between vertices `u`, `w` on the BFS frontier closes a cycle of length
/// `dist(u) + dist(w) + 1` through `v`'s BFS tree. Taking the minimum over all
/// roots yields the exact girth (the standard `O(n·m)` method: for the root on
/// a shortest cycle, the bound is tight).
pub fn girth(g: &Graph) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut dist = vec![usize::MAX; g.n()];
    let mut parent_edge = vec![usize::MAX; g.n()];
    let mut touched: Vec<NodeId> = Vec::new();
    for root in g.vertices() {
        // BFS from root, stopping when levels exceed best/2.
        for &t in &touched {
            dist[t] = usize::MAX;
            parent_edge[t] = usize::MAX;
        }
        touched.clear();
        dist[root] = 0;
        touched.push(root);
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            if let Some(b) = best {
                // Any cycle found deeper than this cannot beat `b`.
                if 2 * dist[u] + 1 >= b {
                    continue;
                }
            }
            for nb in g.neighbors(u) {
                if nb.edge == parent_edge[u] {
                    continue;
                }
                let w = nb.node;
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent_edge[w] = nb.edge;
                    touched.push(w);
                    queue.push_back(w);
                } else {
                    // Non-tree edge: cycle of length dist[u] + dist[w] + 1.
                    let c = dist[u] + dist[w] + 1;
                    if best.is_none_or(|b| c < b) {
                        best = Some(c);
                    }
                }
            }
        }
    }
    best
}

/// 2-coloring of a bipartite graph: returns `sides[v] ∈ {0, 1}` per vertex, or
/// `None` if the graph contains an odd cycle.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut side = vec![u8::MAX; g.n()];
    for start in g.vertices() {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for nb in g.neighbors(u) {
                if side[nb.node] == u8::MAX {
                    side[nb.node] = 1 - side[u];
                    queue.push_back(nb.node);
                } else if side[nb.node] == side[u] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// The power graph `G^k`: vertices of `G`, edges between distinct vertices at
/// distance `≤ k` in `G`.
///
/// This is the object Theorems 5, 6, and 8 run Linial's algorithm on ("treat
/// each ℓ-bit ID as a color, recolor `G'` where `G'` joins vertices within
/// distance `2t + 2r`"). A step of an algorithm on `G^k` is simulated in `G`
/// with `k` rounds.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn power_graph(g: &Graph, k: usize) -> Graph {
    assert!(k > 0, "power_graph requires k >= 1");
    let mut b = GraphBuilder::new(g.n());
    let mut dist = vec![usize::MAX; g.n()];
    let mut touched: Vec<NodeId> = Vec::new();
    for v in g.vertices() {
        // Bounded BFS to depth k.
        for &t in &touched {
            dist[t] = usize::MAX;
        }
        touched.clear();
        dist[v] = 0;
        touched.push(v);
        let mut queue = VecDeque::from([v]);
        while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                continue;
            }
            for nb in g.neighbors(u) {
                if dist[nb.node] == usize::MAX {
                    dist[nb.node] = dist[u] + 1;
                    touched.push(nb.node);
                    queue.push_back(nb.node);
                    if nb.node > v {
                        b.add_edge(v, nb.node).expect("unique by construction");
                    }
                }
            }
        }
    }
    b.build()
}

/// The line graph `L(G)`: one vertex per edge of `G`, adjacent iff the
/// edges share an endpoint.
///
/// Used to reduce maximal matching to MIS: a maximal independent set of
/// `L(G)` is exactly a maximal matching of `G`. One round on `L(G)` is
/// simulated by two rounds on `G` (each edge is simulated by its endpoints).
pub fn line_graph(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new(g.m());
    for v in g.vertices() {
        let inc = g.neighbors(v);
        for i in 0..inc.len() {
            for j in (i + 1)..inc.len() {
                let (e1, e2) = (inc[i].edge, inc[j].edge);
                if !b.has_edge(e1, e2) {
                    b.add_edge(e1, e2).expect("checked for duplicates");
                }
            }
        }
    }
    b.build()
}

/// The number of vertices within distance `r` of `v` (including `v`):
/// `|N^r(v)|` in the paper's notation.
pub fn ball_size(g: &Graph, v: NodeId, r: usize) -> usize {
    let mut dist = vec![usize::MAX; g.n()];
    dist[v] = 0;
    let mut count = 1;
    let mut queue = VecDeque::from([v]);
    while let Some(u) = queue.pop_front() {
        if dist[u] == r {
            continue;
        }
        for nb in g.neighbors(u) {
            if dist[nb.node] == usize::MAX {
                dist[nb.node] = dist[u] + 1;
                count += 1;
                queue.push_back(nb.node);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_path() {
        let g = gen::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_of_disjoint_edges() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&gen::cycle(6)), Some(3));
        assert_eq!(diameter(&gen::cycle(7)), Some(3));
        assert_eq!(diameter(&gen::path(5)), Some(4));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn girth_of_cycles() {
        for n in 3..12 {
            assert_eq!(girth(&gen::cycle(n)), Some(n), "girth of C_{n}");
        }
    }

    #[test]
    fn girth_of_forest_is_none() {
        assert_eq!(girth(&gen::path(10)), None);
        assert_eq!(girth(&gen::star(10)), None);
    }

    #[test]
    fn girth_of_complete() {
        assert_eq!(girth(&gen::complete(4)), Some(3));
        assert_eq!(girth(&gen::complete(5)), Some(3));
    }

    #[test]
    fn girth_of_petersen() {
        // Petersen graph: 3-regular, girth 5.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<_> = outer.into_iter().chain(spokes).chain(inner).collect();
        let g = GraphBuilder::from_edges(10, edges).unwrap();
        assert!(g.is_regular(3));
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn girth_of_k33() {
        // K_{3,3}: 3-regular bipartite, girth 4.
        let mut b = GraphBuilder::new(6);
        for u in 0..3 {
            for v in 3..6 {
                b.add_edge(u, v).unwrap();
            }
        }
        assert_eq!(girth(&b.build()), Some(4));
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let side = bipartition(&gen::cycle(8)).unwrap();
        for e in gen::cycle(8).edges() {
            assert_ne!(side[e.0], side[e.1]);
        }
    }

    #[test]
    fn bipartition_rejects_odd_cycle() {
        assert!(bipartition(&gen::cycle(7)).is_none());
        assert!(bipartition(&gen::complete(3)).is_none());
    }

    #[test]
    fn tree_and_forest_predicates() {
        assert!(is_tree(&gen::path(5)));
        assert!(is_tree(&gen::star(7)));
        assert!(!is_tree(&gen::cycle(5)));
        assert!(is_forest(
            &GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap()
        ));
        assert!(!is_forest(&gen::cycle(4)));
    }

    #[test]
    fn power_graph_of_path() {
        let g = gen::path(5); // 0-1-2-3-4
        let g2 = power_graph(&g, 2);
        assert!(g2.has_edge(0, 2));
        assert!(g2.has_edge(0, 1));
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g2.m(), 4 + 3); // distance-1 plus distance-2 pairs
    }

    #[test]
    fn power_graph_k1_is_same_graph() {
        let g = gen::cycle(6);
        let g1 = power_graph(&g, 1);
        assert_eq!(g1.m(), g.m());
        for &(u, v) in g.edges() {
            assert!(g1.has_edge(u, v));
        }
    }

    #[test]
    fn ball_sizes_on_cycle() {
        let g = gen::cycle(10);
        assert_eq!(ball_size(&g, 0, 0), 1);
        assert_eq!(ball_size(&g, 0, 1), 3);
        assert_eq!(ball_size(&g, 0, 2), 5);
        assert_eq!(ball_size(&g, 0, 100), 10);
    }
}

#[cfg(test)]
mod line_graph_tests {
    use super::*;
    use crate::gen;

    #[test]
    fn line_graph_of_path() {
        // P4 has 3 edges in a path; L(P4) = P3.
        let g = gen::path(4);
        let l = line_graph(&g);
        assert_eq!(l.n(), 3);
        assert_eq!(l.m(), 2);
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let g = gen::cycle(7);
        let l = line_graph(&g);
        assert_eq!(l.n(), 7);
        assert_eq!(l.m(), 7);
        assert!(l.is_regular(2));
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = gen::star(5);
        let l = line_graph(&g);
        assert_eq!(l.n(), 4);
        assert_eq!(l.m(), 6); // K4
    }

    #[test]
    fn line_graph_degree_bound() {
        // Δ(L(G)) ≤ 2Δ(G) − 2.
        let g = gen::complete(6);
        let l = line_graph(&g);
        assert!(l.max_degree() <= 2 * g.max_degree() - 2);
    }
}
