//! Differential property tests for the CSR adjacency.
//!
//! [`Graph`] stores its adjacency as one flat CSR arena (offsets + a single
//! `Vec<Neighbor>`), but its public contract is still the old nested
//! `Vec<Vec<Neighbor>>` semantics: ports are numbered in edge-insertion
//! order, `back_port` cross-references are exact, and edge ids are insertion
//! indices. These tests rebuild that reference representation independently
//! from the same edge list and require the CSR graph to agree neighbor-for-
//! neighbor on arbitrary random graphs.

use local_graphs::{gen, Graph, GraphBuilder, Neighbor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-refactor adjacency representation, built by the pre-refactor
/// rule: each inserted edge appends one `Neighbor` to each endpoint's list.
fn reference_adj(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<Neighbor>> {
    let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    for (e, &(u, v)) in edges.iter().enumerate() {
        let pu = adj[u].len();
        let pv = adj[v].len();
        adj[u].push(Neighbor {
            node: v,
            back_port: pv,
            edge: e,
        });
        adj[v].push(Neighbor {
            node: u,
            back_port: pu,
            edge: e,
        });
    }
    adj
}

/// A random simple edge list on `n` vertices: every `u < v` pair included
/// independently with probability `p`, in lexicographic insertion order.
fn random_edges(n: usize, p: f64, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

fn assert_matches_reference(g: &Graph, n: usize, edges: &[(usize, usize)]) {
    let reference = reference_adj(n, edges);
    assert_eq!(g.n(), n);
    assert_eq!(g.m(), edges.len());
    let expected_max = reference.iter().map(Vec::len).max().unwrap_or(0);
    assert_eq!(g.max_degree(), expected_max);

    let offsets = g.csr_offsets();
    assert_eq!(offsets.len(), n + 1);
    assert_eq!(offsets[0], 0);
    assert_eq!(offsets[n], 2 * edges.len());

    for v in 0..n {
        assert_eq!(g.degree(v), reference[v].len(), "degree of {v}");
        assert_eq!(
            offsets[v + 1] - offsets[v],
            reference[v].len(),
            "CSR slot span of {v}"
        );
        assert_eq!(g.neighbors(v), reference[v].as_slice(), "adjacency of {v}");
    }
    for (e, &(u, v)) in edges.iter().enumerate() {
        assert_eq!(g.endpoints(e), (u, v), "endpoints of edge {e}");
        assert!(g.has_edge(u, v) && g.has_edge(v, u));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_csr_matches_nested_vec_reference(n in 1usize..40, seed in 0u64..10_000, pct in 0u32..90) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_edges(n, f64::from(pct) / 100.0, &mut rng);
        let g = GraphBuilder::from_edges(n, edges.iter().copied()).expect("valid simple edges");
        assert_matches_reference(&g, n, &edges);
    }

    #[test]
    fn streamed_cycle_matches_nested_vec_reference(n in 3usize..200) {
        // The implicit-edge constructor must agree with the same reference
        // model on the cycle's canonical insertion order (edge i = (i, i+1),
        // closing edge last).
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, n - 1));
        let g = gen::stream::cycle(n);
        assert_matches_reference(&g, n, &edges);
    }
}

#[test]
fn empty_and_isolated_vertices_have_empty_csr_rows() {
    let g = GraphBuilder::new(5).build();
    assert_eq!(g.m(), 0);
    assert_eq!(g.csr_offsets(), &[0, 0, 0, 0, 0, 0]);
    for v in 0..5 {
        assert!(g.neighbors(v).is_empty());
    }
}
