//! Property tests of the metrics plane's determinism guarantee.
//!
//! The metrics contract (README §Metrics) mirrors the trace plane's:
//! a `--metrics` document is a pure function of the experiment's seeds.
//! Producers record into per-trial [`MetricSet`]s, the harness absorbs each
//! set in trial order, and registries merge associatively and commutatively
//! — so any grouping of the trials (rayon threads, fabric workers,
//! checkpoint resumes) folds to the same registry and the same bytes.
//! These tests pin each link of that argument: merge algebra on random
//! registries, grouping invariance over random partitions, the parallel
//! harness against a plain sequential loop, and the span-profile identity
//! that self-times partition the root wall-clock exactly.

use local_model::{Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol};
use local_obs::{
    EventData, MetricId, MetricSet, MetricsRegistry, SpanProfile, TraceEvent, TraceSink,
};
use local_separation::trials::{Trial, TrialOutcome, TrialPlan, TrialSpec};
use proptest::prelude::*;

/// Apply one opcode to a recorder: a mix of counters, gauges, and both
/// histograms, so merged registries exercise every metric kind.
fn apply_op(set: &MetricSet, op: u8, v: u64) {
    match op % 6 {
        0 => set.add(MetricId::EngineRounds, v % 1000),
        1 => set.add(MetricId::EngineMessages, v),
        2 => set.gauge_max(MetricId::RecoveryRadiusMax, v % 64),
        3 => set.gauge_max(MetricId::SearchBestObjective, v % 4096),
        4 => set.observe(MetricId::EngineHaltRound, v % 300),
        _ => set.observe_n(MetricId::EngineMessagesPerVertex, v % 64, 1 + v % 5),
    }
}

fn registry_from(ops: &[(u8, u64)]) -> MetricsRegistry {
    let set = MetricSet::new();
    for (op, v) in ops {
        apply_op(&set, *op, *v);
    }
    let mut reg = MetricsRegistry::new();
    reg.absorb(&set);
    reg
}

fn merged(a: &MetricsRegistry, b: &MetricsRegistry) -> MetricsRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn bytes(reg: &MetricsRegistry) -> String {
    serde_json::to_string(reg).expect("registries serialize infallibly")
}

/// Up to 12 random recorder opcodes. (The vendored proptest's `vec` is
/// fixed-length, so variable length comes from truncating a prefix.)
fn ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    (
        0usize..=12,
        proptest::collection::vec((0u8..=255, 0u64..1_000_000_000), 12),
    )
        .prop_map(|(len, items)| items.into_iter().take(len).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is associative and commutative, down to the serialized bytes —
    /// the algebraic core of thread-count invariance.
    #[test]
    fn merge_is_associative_and_commutative(a in ops(), b in ops(), c in ops()) {
        let (a, b, c) = (registry_from(&a), registry_from(&b), registry_from(&c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(bytes(&left), bytes(&right));
        prop_assert_eq!(bytes(&merged(&a, &b)), bytes(&merged(&b, &a)));
    }

    /// Grouping invariance: absorbing every trial serially equals splitting
    /// the trials into arbitrary contiguous chunks (what a thread pool or a
    /// fabric lease schedule does), folding each chunk privately, and
    /// merging the chunk registries in order.
    #[test]
    fn chunked_fold_matches_serial_fold(
        trials in (1usize..=16, proptest::collection::vec(ops(), 16))
            .prop_map(|(len, v)| v.into_iter().take(len).collect::<Vec<_>>()),
        splits in proptest::collection::vec(1usize..4, 8),
    ) {
        let mut serial = MetricsRegistry::new();
        for t in &trials {
            serial.merge(&registry_from(t));
        }
        let mut chunked = MetricsRegistry::new();
        let mut rest: &[Vec<(u8, u64)>] = &trials;
        let mut splits = splits.into_iter();
        while !rest.is_empty() {
            let take = splits.next().unwrap_or(usize::MAX).min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            let mut worker = MetricsRegistry::new();
            for t in chunk {
                worker.merge(&registry_from(t));
            }
            chunked.merge(&worker);
            rest = tail;
        }
        prop_assert_eq!(&chunked, &serial);
        prop_assert_eq!(bytes(&chunked), bytes(&serial));
    }
}

/// A small protocol with data-dependent halting, so different trials meter
/// different round counts and message volumes.
struct Pulse {
    fuel: u32,
}

impl NodeProgram for Pulse {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        let heard: u64 = io.received().map(|(_, &m)| m).sum();
        if io.is_randomized() {
            self.fuel = self.fuel.saturating_sub((io.rng().next_u64() % 2) as u32);
        }
        if round >= self.fuel {
            Action::Halt(heard)
        } else {
            io.broadcast(heard.wrapping_add(u64::from(round)));
            Action::Continue
        }
    }
}

struct PulseProtocol;
impl Protocol for PulseProtocol {
    type Node = Pulse;
    fn create(&self, init: &NodeInit<'_>) -> Pulse {
        Pulse {
            fuel: 1 + (init.degree as u32 % 3),
        }
    }
}

/// One metered trial: a full engine run against a seed-derived ring, its
/// aggregates folded into a fresh single-trial registry.
fn metered_trial(trial: Trial) -> MetricsRegistry {
    let set = MetricSet::new();
    let n = 4 + (trial.seed % 5) as usize;
    let g = local_graphs::gen::cycle(n);
    let spec = ExecSpec::default().metered(Some(&set));
    Engine::new(&g, Mode::randomized(trial.seed)).execute(&spec, &PulseProtocol);
    let mut reg = MetricsRegistry::new();
    reg.absorb(&set);
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel harness folds to the same bytes as a plain sequential
    /// loop — exactly what a one-thread pool (or `RAYON_NUM_THREADS=8`, or
    /// the fabric) would produce for the same plan.
    #[test]
    fn parallel_metrics_fold_is_bit_identical_to_serial(
        trials in 1u64..12,
        master_seed in 0u64..500,
    ) {
        let plan = TrialPlan::new(trials, master_seed);
        let mut parallel = MetricsRegistry::new();
        for reg in plan
            .execute(TrialSpec::new(), |t, _| metered_trial(t))
            .into_iter()
            .map(TrialOutcome::into_ok)
        {
            parallel.merge(&reg);
        }
        let mut serial = MetricsRegistry::new();
        for index in 0..plan.trials() {
            serial.merge(&metered_trial(Trial { index, seed: plan.seed(index) }));
        }
        prop_assert_eq!(&parallel, &serial);
        prop_assert_eq!(bytes(&parallel), bytes(&serial));
    }
}

/// Build a random well-formed span forest for one trial, returning its
/// events and the exact root wall-clock the generator assembled. Each
/// script byte's parity decides push-vs-pop; the `u64` is a pop's
/// self-time.
fn span_forest(trial: u64, script: &[(u8, u64)]) -> (Vec<TraceEvent>, u64) {
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut emit = |data: EventData| {
        events.push(TraceEvent { trial, seq, data });
        seq += 1;
    };
    // Stack of (name index, accumulated child total).
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let mut root_total = 0u64;
    let mut next_name = 0usize;
    let mut close =
        |stack: &mut Vec<(usize, u64)>, emit: &mut dyn FnMut(EventData), self_micros: u64| {
            let (name, children) = stack.pop().expect("caller checks depth");
            let total = self_micros + children;
            emit(EventData::SpanEnd {
                name: format!("s{name}"),
                micros: total,
            });
            match stack.last_mut() {
                Some(parent) => parent.1 += total,
                None => root_total += total,
            }
        };
    for (op, weight) in script {
        if op % 2 == 0 && stack.len() < 4 {
            emit(EventData::SpanStart {
                name: format!("s{next_name}"),
            });
            stack.push((next_name, 0));
            next_name += 1;
        } else if !stack.is_empty() {
            let w = weight % 1000;
            close(&mut stack, &mut emit, w);
        }
    }
    while !stack.is_empty() {
        close(&mut stack, &mut emit, 1);
    }
    (events, root_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flamegraph identity: over any well-formed span forest, per-path
    /// self-times sum exactly to the root total — no time is double-counted
    /// or lost when spans nest arbitrarily.
    #[test]
    fn span_profile_self_times_partition_the_root_total(
        scripts in (
            1usize..=3,
            proptest::collection::vec(
                (0usize..=24, proptest::collection::vec((0u8..=255, 0u64..1_000_000), 24))
                    .prop_map(|(len, v)| v.into_iter().take(len).collect::<Vec<_>>()),
                3,
            ),
        )
            .prop_map(|(len, v)| v.into_iter().take(len).collect::<Vec<_>>()),
    ) {
        let mut events = Vec::new();
        let mut expected_root = 0u64;
        for (trial, script) in scripts.iter().enumerate() {
            let (mut ev, root) = span_forest(trial as u64, script);
            events.append(&mut ev);
            expected_root += root;
        }
        let profile = SpanProfile::from_events(&events);
        prop_assert_eq!(profile.orphan_ends(), 0);
        prop_assert_eq!(profile.unclosed_starts(), 0);
        prop_assert_eq!(profile.root_micros(), expected_root);
        let self_sum: u64 = profile.entries().iter().map(|e| e.self_micros).sum();
        prop_assert_eq!(self_sum, expected_root);
    }
}

/// The same identity on a real traced experiment: E13's quick sweep records
/// phase spans through the actual producers, and its profile's self-times
/// must still partition the root total.
#[test]
fn traced_e13_profile_self_times_sum_to_root_total() {
    use local_separation::experiments::e13_recovery as e13;
    let mut sink = local_obs::MemorySink::new();
    let cfg = e13::Config::quick();
    e13::run_traced(&cfg, Some(&mut sink));
    sink.flush();
    let profile = SpanProfile::from_events(sink.events());
    assert!(!profile.is_empty(), "E13's trace records phase spans");
    assert_eq!(profile.orphan_ends(), 0);
    assert_eq!(profile.unclosed_starts(), 0);
    let self_sum: u64 = profile.entries().iter().map(|e| e.self_micros).sum();
    assert_eq!(self_sum, profile.root_micros());
}
