//! Property tests of the trace plane's determinism guarantee.
//!
//! The observability contract (README §Observability) is that a trace is a
//! pure function of the experiment's seeds: the event stream a sink receives
//! is bit-identical no matter how many rayon workers executed the batch.
//! [`TrialPlan::run_with_trace`] buffers each trial's events privately and
//! drains them in trial order, so the guarantee holds *by construction* —
//! these tests pin it down against the ground truth of a plain sequential
//! loop (exactly what a one-thread pool would produce).

use local_model::{Action, Engine, ExecSpec, Mode, NodeInit, NodeIo, NodeProgram, Protocol};
use local_obs::{MemorySink, Trace, TraceSink};
use local_separation::trials::{Trial, TrialOutcome, TrialPlan, TrialSpec};
use proptest::prelude::*;

/// A small protocol with data-dependent halting so different trials emit
/// different numbers of round events.
struct Pulse {
    fuel: u32,
}

impl NodeProgram for Pulse {
    type Msg = u64;
    type Output = u64;
    fn step(&mut self, round: u32, io: &mut NodeIo<'_, u64>) -> Action<u64> {
        let heard: u64 = io.received().map(|(_, &m)| m).sum();
        if io.is_randomized() {
            self.fuel = self.fuel.saturating_sub((io.rng().next_u64() % 2) as u32);
        }
        if round >= self.fuel {
            Action::Halt(heard)
        } else {
            io.broadcast(heard.wrapping_add(u64::from(round)));
            Action::Continue
        }
    }
}

struct PulseProtocol;
impl Protocol for PulseProtocol {
    type Node = Pulse;
    fn create(&self, init: &NodeInit<'_>) -> Pulse {
        Pulse {
            fuel: 1 + (init.degree as u32 % 3),
        }
    }
}

/// One traced trial: a full engine run (with per-round events and the
/// engine's message/halt histograms) against a seed-derived ring.
fn traced_trial(trial: Trial, trace: Option<&Trace>) -> u64 {
    let n = 4 + (trial.seed % 5) as usize;
    let g = local_graphs::gen::cycle(n);
    let mut engine = Engine::new(&g, Mode::randomized(trial.seed));
    if let Some(t) = trace {
        engine = engine.with_trace(t);
    }
    let run = engine.execute(&ExecSpec::default(), &PulseProtocol);
    run.stats.messages_sent
}

/// Run the batch through the unified entry point with a trace attached,
/// unwrapping the (never-panicking) outcomes back to plain results.
fn run_traced(plan: &TrialPlan, sink: &mut MemorySink) -> Vec<u64> {
    plan.execute(TrialSpec::new().traced(Some(sink)), traced_trial)
        .into_iter()
        .map(TrialOutcome::into_ok)
        .collect()
}

/// The ground truth: the same batch executed by a plain sequential loop,
/// draining each trial's buffer as soon as it finishes — byte for byte what
/// a one-thread pool produces.
fn serial_reference(plan: &TrialPlan, sink: &mut MemorySink) -> Vec<u64> {
    let mut results = Vec::new();
    for index in 0..plan.trials() {
        let trial = Trial {
            index,
            seed: plan.seed(index),
        };
        let trace = Trace::new(index);
        results.push(traced_trial(trial, Some(&trace)));
        trace.drain_into(sink);
    }
    sink.flush();
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel harness and the sequential reference must hand the sink
    /// the *same bytes*: same events, same order, same (trial, seq) stamps.
    #[test]
    fn parallel_trace_is_bit_identical_to_serial(trials in 1u64..12, master_seed in 0u64..500) {
        let plan = TrialPlan::new(trials, master_seed);

        let mut parallel = MemorySink::new();
        let par_results = run_traced(&plan, &mut parallel);

        let mut serial = MemorySink::new();
        let ser_results = serial_reference(&plan, &mut serial);

        prop_assert_eq!(par_results, ser_results);
        prop_assert_eq!(parallel.events(), serial.events());
    }

    /// Repeated parallel runs of the same plan are bit-identical to each
    /// other — no scheduling artifact ever leaks into the stream.
    #[test]
    fn repeated_parallel_traces_are_bit_identical(trials in 1u64..12, master_seed in 0u64..500) {
        let plan = TrialPlan::new(trials, master_seed);
        let mut a = MemorySink::new();
        run_traced(&plan, &mut a);
        let mut b = MemorySink::new();
        run_traced(&plan, &mut b);
        prop_assert_eq!(a.events(), b.events());
    }

    /// Tracing must not perturb results: the traced batch returns exactly
    /// what the untraced batch returns.
    #[test]
    fn tracing_does_not_change_results(trials in 1u64..12, master_seed in 0u64..500) {
        let plan = TrialPlan::new(trials, master_seed);
        let untraced: Vec<u64> = plan
            .execute(TrialSpec::new(), |t, _| traced_trial(t, None))
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        let mut sink = MemorySink::new();
        let traced = run_traced(&plan, &mut sink);
        prop_assert_eq!(untraced, traced);
    }
}
