//! Golden differential fixtures for the ExecSpec refactor.
//!
//! The fixtures under `tests/fixtures/` were captured from the pre-refactor
//! execution paths (`Engine::run`/`run_faulty`, the six `run_sync*` variants,
//! the five `TrialPlan::run*` variants). After the collapse onto
//! `Engine::execute` / `run_sync(&ExecSpec)` / `TrialPlan::execute`, these
//! tests assert the unified pipeline is bit-identical on rows (rounds,
//! messages, outputs) and trace bytes, fault-free and faulty.
//!
//! Regenerate (only when an *intentional* behavior change lands) with:
//! `GOLDEN_REGEN=1 cargo test -p local-separation --test golden_differential`

use local_obs::{MemorySink, TraceSink};
use local_separation::experiments::{e12_resilience, e1_separation, e9_mis};
use std::fs;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("tests");
    p.push("fixtures");
    p.push(name);
    p
}

/// Compare `actual` against the named fixture, or rewrite it when
/// `GOLDEN_REGEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with GOLDEN_REGEN=1", name));
    assert_eq!(
        expected, actual,
        "{name}: output diverged from the pre-refactor golden fixture"
    );
}

#[test]
fn e1_rows_match_pre_refactor_fixture() {
    let cfg = e1_separation::Config {
        deltas: vec![16],
        ns: vec![256, 1024],
        seeds: 2,
    };
    let out = e1_separation::run(&cfg);
    let json = serde_json::to_string_pretty(&out.rows).expect("rows serialize");
    assert_golden("e1_rows.json", &json);
}

#[test]
fn e9_rows_match_pre_refactor_fixture() {
    let cfg = e9_mis::Config {
        delta: 4,
        ns: vec![256, 1024],
        seeds: 2,
    };
    let out = e9_mis::run(&cfg);
    let json = serde_json::to_string_pretty(&out.rows).expect("rows serialize");
    assert_golden("e9_rows.json", &json);
}

fn e12_tiny() -> e12_resilience::Config {
    e12_resilience::Config {
        tree_n: 80,
        sinkless_n: 60,
        mis_n: 60,
        drop_ps: vec![0.0, 0.5],
        crash_ps: vec![0.0, 0.2],
        trials: 2,
        master_seed: 7,
    }
}

/// E12 rows cover the full grid: the (0, 0) point is the fault-free path,
/// the rest exercise drops and crash-stop scheduling.
#[test]
fn e12_rows_match_pre_refactor_fixture() {
    let out = e12_resilience::run(&e12_tiny());
    let json = serde_json::to_string_pretty(&out.rows).expect("rows serialize");
    assert_golden("e12_rows.json", &json);
}

/// The traced E12 sweep, scrubbed of wall-clock span timings, must stay
/// byte-identical: same events, same `(trial, seq)` stamps, same order.
#[test]
fn e12_trace_matches_pre_refactor_fixture() {
    let mut sink = MemorySink::new();
    let out = e12_resilience::run_traced(&e12_tiny(), Some(&mut sink));
    sink.flush();
    let lines: Vec<String> = sink
        .into_events()
        .iter()
        .map(|e| serde_json::to_string(&e.scrubbed()).expect("event serializes"))
        .collect();
    let mut blob = lines.join("\n");
    blob.push('\n');
    assert_golden("e12_trace.jsonl", &blob);
    // Traced and untraced rows agree too (tracing is observational).
    let plain = e12_resilience::run(&e12_tiny());
    assert_eq!(
        serde_json::to_string(&plain.rows).unwrap(),
        serde_json::to_string(&out.rows).unwrap(),
    );
}
