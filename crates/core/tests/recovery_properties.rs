//! Property tests of the recovery subsystem (E13's foundation).
//!
//! Three guarantees the self-healing experiment leans on:
//!
//! 1. On a fault-free run, where every vertex halts with a label, the
//!    partial checker and the complete checker are the *same* verifier —
//!    vertex for vertex, nothing skipped.
//! 2. Every labeling [`recover`] returns is accepted by `check_complete`:
//!    the splice it hands back is exactly the one it verified.
//! 3. With a full palette (maxdeg + 1 colors) the greedy finisher can never
//!    starve, so recovery of an arbitrarily-holed valid coloring always
//!    succeeds on the first attempt.
//! 4. Under *arbitrary* fuzzed fault plans — delay-only storms, every
//!    crash scheduled at round 0, or mixed drop/delay/crash — the recovery
//!    pipeline never panics and `check_partial` never over-counts, whether
//!    the engine sweeps serially or across 8 shards (E14's search evaluates
//!    thousands of such plans and leans on exactly these guarantees).

use local_algorithms::mis::luby::Luby;
use local_algorithms::orientation::sinkless::SinklessRepair;
use local_algorithms::{
    recover, run_sync, GreedyColoringFinisher, LubyRestartFinisher, RecoveryPolicy,
    SinklessFinisher,
};
use local_graphs::{gen, Graph};
use local_lcl::problems::{Mis, Orientation, SinklessOrientation, VertexColoring};
use local_lcl::{check_complete, check_partial, Labeling};
use local_model::{ExecSpec, FaultPlan, FaultSpec, Mode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, 0u64..500, 10u32..40).prop_map(|(n, seed, pct)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, f64::from(pct) / 100.0, &mut rng)
    })
}

/// The shape of a fuzzed fault plan. The two named corner cases the
/// adversary plane cares most about get their own variants so proptest
/// exercises them every run instead of hoping `Mixed` lands on them.
#[derive(Debug, Clone)]
enum ArbFaults {
    /// Every message delayed with probability `pct`/100, nothing else: no
    /// vertex ever crashes, no edge drops, yet rounds stretch arbitrarily.
    DelayOnly { pct: u32 },
    /// The first `count` vertices crash *before their first send* — the
    /// harshest schedule, leaving radius-1 holes around every casualty.
    CrashAtZero { count: usize },
    /// Sampled drop/delay/crash mixture.
    Mixed {
        drop_pct: u32,
        delay_pct: u32,
        crash_pct: u32,
        window: u32,
    },
}

fn arb_faults() -> impl Strategy<Value = ArbFaults> {
    prop_oneof![
        (1u32..=100).prop_map(|pct| ArbFaults::DelayOnly { pct }),
        (1usize..6).prop_map(|count| ArbFaults::CrashAtZero { count }),
        (0u32..40, 0u32..40, 0u32..30, 0u32..8).prop_map(
            |(drop_pct, delay_pct, crash_pct, window)| {
                ArbFaults::Mixed {
                    drop_pct,
                    delay_pct,
                    crash_pct,
                    window,
                }
            }
        ),
    ]
}

fn build_plan(g: &Graph, shape: &ArbFaults, fault_seed: u64) -> FaultPlan {
    match *shape {
        ArbFaults::DelayOnly { pct } => FaultPlan::sample(
            g,
            &FaultSpec::none().with_delay(f64::from(pct) / 100.0),
            fault_seed,
        ),
        ArbFaults::CrashAtZero { count } => {
            let mut plan = FaultPlan::none();
            for v in 0..count.min(g.n()) {
                plan.set_crash(g, v, Some(0));
            }
            plan
        }
        ArbFaults::Mixed {
            drop_pct,
            delay_pct,
            crash_pct,
            window,
        } => FaultPlan::sample(
            g,
            &FaultSpec::none()
                .with_drop(f64::from(drop_pct) / 100.0)
                .with_delay(f64::from(delay_pct) / 100.0)
                .with_crash(f64::from(crash_pct) / 100.0, window),
            fault_seed,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On an all-halted fault-free run, `check_partial` agrees with
    /// `check_complete` vertex for vertex: same checked/valid counts, no
    /// skips, identical violation lists.
    #[test]
    fn partial_and_complete_checkers_agree_on_fault_free_runs(
        g in arb_graph(),
        seed in 0u64..100,
    ) {
        let run = run_sync(&g, Mode::randomized(seed), &Luby::new(), &ExecSpec::rounds(10_000).with_faults(&FaultPlan::none()));
        let partial: Vec<Option<bool>> =
            run.outcomes.iter().map(|o| o.output().copied()).collect();
        prop_assert!(partial.iter().all(Option::is_some), "fault-free Luby halts everywhere");
        let full: Vec<bool> = partial.iter().map(|o| o.unwrap()).collect();

        let pv = check_partial(&Mis::new(), &g, &partial);
        let cv = check_complete(&Mis::new(), &g, &Labeling::new(full));
        prop_assert_eq!(pv.skipped, 0);
        prop_assert_eq!(pv.checked, g.n());
        prop_assert_eq!(pv.checked, cv.checked);
        prop_assert_eq!(pv.valid, cv.valid);
        prop_assert_eq!(&pv.violations, &cv.violations);
        // And a correct MIS validates outright.
        prop_assert!(cv.violations.is_empty(), "{:?}", cv.violations);
    }

    /// Every labeling MIS recovery returns passes `check_complete` — the
    /// splice handed back is the one that was verified.
    #[test]
    fn mis_recovery_is_accepted_by_check_complete(
        g in arb_graph(),
        seed in 0u64..100,
        fault_seed in 0u64..1000,
    ) {
        let spec = FaultSpec::none().with_drop(0.1).with_crash(0.1, 5);
        let plan = FaultPlan::sample(&g, &spec, fault_seed);
        let run = run_sync(&g, Mode::randomized(seed), &Luby::new(), &ExecSpec::rounds(10_000).with_faults(&plan));
        let partial: Vec<Option<bool>> =
            run.outcomes.iter().map(|o| o.output().copied()).collect();
        let finisher = LubyRestartFinisher { seed: fault_seed };
        if let Ok(rec) = recover(&Mis::new(), &g, &partial, &finisher, &RecoveryPolicy::default()) {
            prop_assert_eq!(rec.labels.len(), g.n());
            let cv = check_complete(&Mis::new(), &g, &rec.labels);
            prop_assert_eq!(cv.checked, g.n());
            prop_assert!(cv.violations.is_empty(), "{:?}", cv.violations);
            prop_assert!(rec.attempts <= 3);
        }
    }

    /// Same acceptance property for sinkless orientation on 3-regular
    /// graphs under crash faults.
    #[test]
    fn sinkless_recovery_is_accepted_by_check_complete(
        half_n in 10usize..30,
        seed in 0u64..100,
        fault_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_regular(half_n * 2, 3, &mut rng).expect("even n·d");
        let spec = FaultSpec::none().with_drop(0.1).with_crash(0.1, 10);
        let plan = FaultPlan::sample(&g, &spec, fault_seed);
        let algo = SinklessRepair { phases: 20 };
        let run = run_sync(&g, Mode::randomized(seed), &algo, &ExecSpec::rounds(46).with_faults(&plan));
        let partial: Vec<Option<Orientation>> =
            run.outcomes.iter().map(|o| o.output().cloned()).collect();
        let problem = SinklessOrientation::new(3);
        if let Ok(rec) = recover(&problem, &g, &partial, &SinklessFinisher, &RecoveryPolicy::default()) {
            let cv = check_complete(&problem, &g, &rec.labels);
            prop_assert_eq!(cv.checked, g.n());
            prop_assert!(cv.violations.is_empty(), "{:?}", cv.violations);
        }
    }

    /// With palette maxdeg + 1 the greedy finisher always has a free color,
    /// so recovery of an arbitrarily-holed valid coloring of a tree must
    /// succeed — and on the first attempt.
    #[test]
    fn full_palette_greedy_recovery_never_fails(
        n in 5usize..60,
        delta in 3usize..8,
        seed in 0u64..500,
        holes in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 60),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree_max_degree(n, delta, &mut rng);
        let maxdeg = g.vertices().map(|v| g.degree(v)).max().unwrap_or(0);
        let palette = maxdeg + 1;

        // A valid greedy base coloring, then arbitrary holes punched in it.
        let mut base: Vec<usize> = vec![0; g.n()];
        for v in g.vertices() {
            let used: Vec<usize> = g.neighbors(v).iter().filter(|nb| nb.node < v)
                .map(|nb| base[nb.node]).collect();
            base[v] = (0..palette).find(|c| !used.contains(c)).expect("palette suffices");
        }
        let partial: Vec<Option<usize>> = base
            .iter()
            .enumerate()
            .map(|(v, &c)| if holes[v % holes.len()] { None } else { Some(c) })
            .collect();

        let problem = VertexColoring::new(palette);
        let finisher = GreedyColoringFinisher { palette };
        let rec = recover(&problem, &g, &partial, &finisher, &RecoveryPolicy::default())
            .expect("full palette never starves");
        prop_assert!(rec.attempts <= 1, "first attempt suffices, got {}", rec.attempts);
        let cv = check_complete(&problem, &g, &rec.labels);
        prop_assert_eq!(cv.checked, g.n());
        prop_assert!(cv.violations.is_empty(), "{:?}", cv.violations);
        // Frozen vertices keep their labels.
        for (v, slot) in partial.iter().enumerate() {
            if let Some(c) = slot {
                prop_assert_eq!(rec.labels.get(v), c);
            }
        }
    }

    /// Under fuzzed fault plans — delay-only, crash-at-round-0, or mixed —
    /// `check_partial` never over-counts: every vertex is checked or
    /// skipped exactly once, a vertex is never checked beyond the labeled
    /// set, and each checked vertex contributes exactly one verdict. Holds
    /// identically whether the run swept serially or across 8 shards.
    #[test]
    fn check_partial_never_over_counts_under_fuzzed_faults(
        g in arb_graph(),
        shape in arb_faults(),
        seed in 0u64..100,
        fault_seed in 0u64..1000,
    ) {
        let plan = build_plan(&g, &shape, fault_seed);
        let mut verdicts = Vec::new();
        for shards in [1usize, 8] {
            let spec = ExecSpec::rounds(200).with_faults(&plan).with_shards(shards);
            let run = run_sync(&g, Mode::randomized(seed), &Luby::new(), &spec);
            let partial: Vec<Option<bool>> =
                run.outcomes.iter().map(|o| o.output().copied()).collect();
            let labeled = partial.iter().filter(|o| o.is_some()).count();
            let pv = check_partial(&Mis::new(), &g, &partial);
            prop_assert_eq!(pv.checked + pv.skipped, g.n());
            prop_assert!(pv.checked <= labeled, "checked {} > labeled {}", pv.checked, labeled);
            prop_assert_eq!(pv.valid + pv.violations.len(), pv.checked);
            for violation in &pv.violations {
                prop_assert!(partial[violation.vertex].is_some(),
                    "violation charged to unlabeled vertex {}", violation.vertex);
            }
            verdicts.push((partial, pv));
        }
        let (serial, sharded) = (&verdicts[0], &verdicts[1]);
        prop_assert_eq!(&serial.0, &sharded.0, "outputs diverged across shard counts");
        prop_assert_eq!(&serial.1, &sharded.1, "verdicts diverged across shard counts");
    }

    /// Recovery never panics, whatever fault plan the adversary search
    /// throws at it: it returns `Ok` with a labeling `check_complete`
    /// accepts or a clean error — on serial and 8-shard runs alike.
    #[test]
    fn recovery_never_panics_under_fuzzed_faults(
        g in arb_graph(),
        shape in arb_faults(),
        seed in 0u64..100,
        fault_seed in 0u64..1000,
    ) {
        let plan = build_plan(&g, &shape, fault_seed);
        for shards in [1usize, 8] {
            let spec = ExecSpec::rounds(200).with_faults(&plan).with_shards(shards);
            let run = run_sync(&g, Mode::randomized(seed), &Luby::new(), &spec);
            let partial: Vec<Option<bool>> =
                run.outcomes.iter().map(|o| o.output().copied()).collect();
            let finisher = LubyRestartFinisher { seed: fault_seed };
            match recover(&Mis::new(), &g, &partial, &finisher, &RecoveryPolicy::default()) {
                Ok(rec) => {
                    let cv = check_complete(&Mis::new(), &g, &rec.labels);
                    prop_assert_eq!(cv.checked, g.n());
                    prop_assert!(cv.violations.is_empty(), "{:?}", cv.violations);
                }
                Err(err) => {
                    // A clean refusal is acceptable; a panic is not.
                    prop_assert!(!err.to_string().is_empty());
                }
            }
        }
    }
}
