//! Catalog self-consistency properties (satellite of the workload-plane
//! unification).
//!
//! For **every** registered workload — present and future, since the loops
//! iterate [`workloads`] rather than naming families — three guarantees the
//! experiment plane leans on:
//!
//! 1. A fault-free run passes the workload's own complete checker:
//!    [`Workload::heal`] validates with **zero** escalation attempts, which
//!    is exactly "the base labeling passed `check_complete` as-is".
//! 2. The partial checker reports zero violations on a fault-free run:
//!    [`Workload::measure`] sees every vertex checked and valid, none
//!    skipped.
//! 3. The finisher applied to an empty core is a no-op: the fault-free
//!    heal extracts a zero-vertex core and pays zero extra rounds.
//!
//! Sizes and seeds are fuzzed (within the generators' feasibility
//! envelope: the 3-regular families need an even vertex count), so the
//! properties hold across the whole configuration space E12/E13 sweep,
//! not just the pinned defaults.

use local_algorithms::RecoveryPolicy;
use local_model::FaultPlan;
use local_separation::workloads::{workloads, Sizes, NAMES};
use proptest::prelude::*;

/// Catalog sizes inside every generator's feasibility envelope. The
/// 3-regular draws (sinkless, edge-coloring base, ruling-set, defective)
/// need `n * 3` even, so those dimensions sample even values only.
fn arb_sizes() -> impl Strategy<Value = Sizes> {
    (8usize..32, 4usize..14, 4usize..14).prop_map(|(tree_n, s, m)| Sizes {
        tree_n,
        sinkless_n: 2 * s,
        mis_n: 2 * m,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every catalog entry builds at feasible sizes, and a fault-free run
    /// passes its own partial checker with nothing skipped and nothing
    /// invalid.
    #[test]
    fn fault_free_partial_check_is_clean(
        sizes in arb_sizes(),
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
    ) {
        let mut seen = Vec::new();
        for slot in workloads(&sizes, graph_seed) {
            let w = slot.unwrap_or_else(|(name, e)| panic!("{name}: {e}"));
            seen.push(w.name());
            let r = w.measure(run_seed, &FaultPlan::none(), None);
            prop_assert_eq!(r.crashed, 0, "{}: no crashes without faults", w.name());
            prop_assert_eq!(r.cut, 0, "{}: no budget cuts without faults", w.name());
            prop_assert_eq!(r.skipped, 0, "{}: every vertex checkable", w.name());
            prop_assert!(r.checked > 0, "{}: checker saw the graph", w.name());
            prop_assert_eq!(
                r.valid, r.checked,
                "{}: zero violations on a fault-free run", w.name()
            );
        }
        prop_assert_eq!(seen, NAMES.to_vec(), "catalog is complete and ordered");
    }

    /// A fault-free run passes its own complete checker as-is (zero
    /// escalation attempts), and the finisher applied to the resulting
    /// empty core is a no-op (zero residue, zero extra rounds).
    #[test]
    fn fault_free_heal_validates_without_escalation(
        sizes in arb_sizes(),
        graph_seed in 0u64..1000,
        run_seed in 0u64..1000,
    ) {
        let policy = RecoveryPolicy::default();
        for slot in workloads(&sizes, graph_seed) {
            let w = slot.unwrap_or_else(|(name, e)| panic!("{name}: {e}"));
            let r = w.heal(run_seed, &FaultPlan::none(), &policy, None);
            prop_assert!(r.recovered, "{}: {:?}", w.name(), r.failure);
            prop_assert_eq!(r.attempts, 0, "{}: check_complete passes as-is", w.name());
            prop_assert_eq!(r.core, 0, "{}: empty damaged core", w.name());
            prop_assert_eq!(r.residue, 0, "{}: empty residue", w.name());
            prop_assert_eq!(r.extra_rounds, 0, "{}: finisher no-op on empty core", w.name());
        }
    }

    /// The adversary evaluator agrees: the trivial fault plan never
    /// degrades any catalog entry, and its damage census is all zeros.
    #[test]
    fn trivial_plan_never_degrades(
        sizes in arb_sizes(),
        graph_seed in 0u64..1000,
        eval_seed in 0u64..1000,
    ) {
        let policy = RecoveryPolicy::default();
        for slot in workloads(&sizes, graph_seed) {
            let w = slot.unwrap_or_else(|(name, e)| panic!("{name}: {e}"));
            let (eval, report) = w.assess(eval_seed, &FaultPlan::none(), &policy, None);
            prop_assert!(!eval.degraded, "{}", w.name());
            prop_assert_eq!(eval.breaches, 0, "{}", w.name());
            prop_assert_eq!(eval.violations, 0, "{}", w.name());
            prop_assert_eq!(eval.crashed + eval.cut, 0, "{}", w.name());
            prop_assert_eq!(report.as_str(), "null", "{}", w.name());
        }
    }
}
