//! Shard-count invariance for the paper's algorithm pipelines.
//!
//! The engine contract (DESIGN.md appendix C) is that the shard count is
//! purely a performance knob: a `RunOutput` is bit-identical whether the
//! round loop executed serially or split across any number of vertex
//! shards. The model crate pins this at the engine level; these tests pin
//! it end-to-end through the sync layer for the three pipelines the
//! experiments lean on — Linial coloring (DetLOCAL), Luby MIS (RandLOCAL),
//! and the Theorem-10 ColorBidding phase — including runs under full fault
//! plans (drops, delays, crashes).

use local_algorithms::color::linial::{LinialAlgorithm, LinialSchedule};
use local_algorithms::mis::luby::Luby;
use local_algorithms::tree::{theorem10_phase1_faulty_sharded, Theorem10Config};
use local_algorithms::{run_sync, SyncRun};
use local_graphs::gen;
use local_model::{ExecSpec, FaultPlan, FaultSpec, Mode};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Field-by-field equality for two faulty runs (SyncRun doesn't implement
/// `PartialEq`, and spelling the fields out makes a divergence report say
/// *which* observable moved).
fn assert_runs_identical<O: PartialEq + std::fmt::Debug>(
    label: &str,
    serial: &SyncRun<O>,
    sharded: &SyncRun<O>,
) {
    assert_eq!(serial.outcomes, sharded.outcomes, "{label}: outcomes");
    assert_eq!(serial.sweeps, sharded.sweeps, "{label}: sweeps");
    assert_eq!(serial.messages, sharded.messages, "{label}: messages");
    assert_eq!(serial.dropped, sharded.dropped, "{label}: dropped");
    assert_eq!(serial.delayed, sharded.delayed, "{label}: delayed");
    assert_eq!(serial.breach, sharded.breach, "{label}: breach");
}

#[test]
fn linial_coloring_is_shard_invariant() {
    let g = gen::stream::circulant(64, 4).expect("64*4 is even");
    let delta = g.max_degree();
    let colors: Vec<u64> = (0..g.n() as u64).collect();
    let palette = g.n() as u64;

    let run = |spec: ExecSpec| {
        let schedule = LinialSchedule::new(palette, delta);
        let algo = LinialAlgorithm::from_colors(schedule, colors.clone());
        run_sync(&g, Mode::deterministic(), &algo, &spec)
            .strict()
            .expect("Linial halts within its schedule")
    };

    let serial = run(ExecSpec::rounds(200));
    for k in SHARD_COUNTS {
        let sharded = run(ExecSpec::rounds(200).with_shards(k));
        assert_eq!(serial.outputs, sharded.outputs, "outputs at {k} shards");
        assert_eq!(serial.rounds, sharded.rounds, "rounds at {k} shards");
    }
}

#[test]
fn luby_mis_under_faults_is_shard_invariant() {
    let g = gen::stream::circulant(50, 4).expect("50*4 is even");
    let faults = FaultSpec::none()
        .with_drop(0.25)
        .with_delay(0.25)
        .with_crash(0.08, 5);
    let plan = FaultPlan::sample(&g, &faults, 1234);

    let run = |spec: ExecSpec| run_sync(&g, Mode::randomized(7), &Luby::new(), &spec);

    let serial = run(ExecSpec::rounds(64).with_faults(&plan));
    for k in SHARD_COUNTS {
        let sharded = run(ExecSpec::rounds(64).with_faults(&plan).with_shards(k));
        assert_runs_identical(&format!("luby at {k} shards"), &serial, &sharded);
    }
}

#[test]
fn luby_mis_fault_free_is_shard_invariant() {
    let g = gen::stream::circulant(60, 6).expect("60*6 is even");

    let run = |spec: ExecSpec| {
        run_sync(&g, Mode::randomized(42), &Luby::new(), &spec)
            .strict()
            .expect("Luby halts on a 60-vertex circulant within 200 rounds")
    };

    let serial = run(ExecSpec::rounds(200));
    for k in SHARD_COUNTS {
        let sharded = run(ExecSpec::rounds(200).with_shards(k));
        assert_eq!(serial.outputs, sharded.outputs, "MIS at {k} shards");
        assert_eq!(serial.rounds, sharded.rounds, "rounds at {k} shards");
        assert_eq!(serial.messages, sharded.messages, "messages at {k} shards");
    }
}

#[test]
fn theorem10_phase1_under_faults_is_shard_invariant() {
    let g = gen::stream::complete_dary_tree(40, 10);
    let delta = 10;
    let faults = FaultSpec::none()
        .with_drop(0.2)
        .with_delay(0.2)
        .with_crash(0.05, 4);
    let plan = FaultPlan::sample(&g, &faults, 99);
    let config = Theorem10Config::default();

    let serial = theorem10_phase1_faulty_sharded(&g, delta, 5, config, &plan, 1);
    for k in SHARD_COUNTS {
        let sharded = theorem10_phase1_faulty_sharded(&g, delta, 5, config, &plan, k);
        assert_runs_identical(&format!("theorem10 at {k} shards"), &serial, &sharded);
    }
}
