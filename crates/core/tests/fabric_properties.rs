//! Property tests of the sweep fabric's determinism contract.
//!
//! The fabric's promise is that *no* crash/respawn/steal schedule can change
//! the merged output: the sweep run through any number of workers, with any
//! pattern of deaths, duplicated work, and torn journal tails, folds to the
//! byte-identical result of the serial run. Two angles:
//!
//! 1. **Merge**: for an arbitrary assignment of units to worker journals —
//!    every unit covered at least once, many covered several times (the
//!    signature of a reclaimed lease re-executed elsewhere), possibly with a
//!    torn final line from a mid-write SIGKILL — [`merge_journals`] returns
//!    exactly the unit-ordered serial value list.
//! 2. **Ledger**: under an arbitrary interleaving of grant / complete /
//!    reclaim operations, [`LeaseLedger`] never double-counts a unit, never
//!    loses one, and always drains to completion once a live worker remains.

use local_separation::checkpoint::Checkpoint;
use local_separation::fabric::{journal_path, merge_journals, Lease, LeaseLedger};
use proptest::prelude::*;
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh per-case scratch directory (proptest runs many cases per thread,
/// so the thread id alone is not unique).
fn temp_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "lcl-fabric-prop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("mkdir");
    p
}

/// The pure unit function the journals record: what the serial run would
/// have produced for global unit `u`.
fn unit_value(u: u64) -> Value {
    Value::U64(u.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xabcd)
}

const MAX_WORKERS: u64 = 5;

proptest! {
    /// Any journal coverage — each unit owned by one worker, arbitrarily
    /// duplicated into others, with an optional torn tail — merges to the
    /// serial unit order. `assign[u] = (owner, duplicate bitmask)`; the
    /// pool is generated at full width and truncated to `total` (the
    /// vendored proptest's `collection::vec` is fixed-length).
    #[test]
    fn arbitrary_journal_coverage_merges_to_serial_order(
        pool in proptest::collection::vec(
            (0u64..MAX_WORKERS, 0u32..(1 << MAX_WORKERS)),
            48,
        ),
        total in 1usize..48,
        torn_slot in 0u64..MAX_WORKERS,
        torn in 0u8..2,
    ) {
        let assign = &pool[..total];
        let torn = torn == 1;
        let dir = temp_dir("merge");
        let scope = "fabric/prop/merge";
        let total = assign.len() as u64;
        // Write each worker's journal: the units it owns plus the units
        // duplicated into it (a reclaimed lease, re-run elsewhere, leaves
        // exactly this shape behind).
        for slot in 0..MAX_WORKERS {
            let units: Vec<u64> = assign
                .iter()
                .enumerate()
                .filter(|(_, (owner, dup))| {
                    *owner == slot || dup & (1 << slot) != 0
                })
                .map(|(u, _)| u as u64)
                .collect();
            if units.is_empty() {
                continue;
            }
            let journal =
                Checkpoint::open(journal_path(&dir, slot)).expect("open journal");
            for u in units {
                journal
                    .record(scope, u, unit_value(u))
                    .expect("record unit");
            }
        }
        if torn {
            // A SIGKILL mid-append leaves a partial, newline-less line; the
            // merge must shrug it off.
            use std::io::Write;
            let path = journal_path(&dir, torn_slot);
            if path.exists() {
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .expect("append");
                f.write_all(b"{\"scope\":\"fabric/prop/merge\",\"ind")
                    .expect("torn tail");
            }
        }
        let merged = merge_journals(&dir, MAX_WORKERS, scope, total).expect("merge");
        let expected: Vec<Value> = (0..total).map(unit_value).collect();
        prop_assert_eq!(merged, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An arbitrary interleaving of grant / complete / reclaim never loses
    /// or double-counts a unit, and the ledger always drains afterwards.
    /// `ops[i] = (kind, slot)`: 0 grants, 1 completes the slot's
    /// outstanding lease, 2 reclaims it (a simulated death).
    #[test]
    fn ledger_interleavings_cover_every_unit_exactly_once(
        total in 1u64..80,
        lease_len in 1u64..9,
        slots in 1usize..5,
        op_pool in proptest::collection::vec((0u8..3, 0usize..5), 200),
        op_len in 0usize..=200,
    ) {
        let ops = op_pool[..op_len].to_vec();
        let mut ledger = LeaseLedger::new(total, lease_len, slots);
        let mut done = vec![false; usize::try_from(total).expect("small")];
        let mark = |lease: Lease, done: &mut Vec<bool>| {
            for u in lease.start..lease.start + lease.len {
                let cell = &mut done[usize::try_from(u).expect("small")];
                assert!(!*cell, "unit {u} completed twice");
                *cell = true;
            }
        };
        for (kind, slot_raw) in ops {
            let slot = slot_raw % slots;
            match kind {
                0 => {
                    ledger.grant(slot);
                }
                1 => {
                    if let Some(lease) = ledger.outstanding(slot).copied() {
                        prop_assert!(ledger.complete(slot, lease.start, lease.len));
                        mark(lease, &mut done);
                    }
                }
                _ => {
                    ledger.reclaim(slot);
                }
            }
        }
        // Drain on slot 0 — the "one surviving worker" the fabric's
        // graceful-degradation path guarantees. Leases stranded on other
        // (dead) slots get reclaimed exactly as the coordinator would.
        while !ledger.is_done() {
            if let Some(lease) = ledger.outstanding(0).copied() {
                prop_assert!(ledger.complete(0, lease.start, lease.len));
                mark(lease, &mut done);
            } else if let Some(lease) = ledger.grant(0) {
                prop_assert!(ledger.complete(0, lease.start, lease.len));
                mark(lease, &mut done);
            } else {
                let mut reclaimed_any = false;
                for s in 1..slots {
                    reclaimed_any |= ledger.reclaim(s).is_some();
                }
                prop_assert!(reclaimed_any, "ledger wedged: no grants, nothing to reclaim");
            }
        }
        prop_assert!(done.iter().all(|&c| c), "some unit never completed");
        prop_assert_eq!(ledger.remaining(), 0);
    }
}
