//! Classifying measured round complexities.
//!
//! The paper's claims are about *growth rates* — `Θ(log_Δ n)` vs
//! `Θ(log_Δ log n)` vs `Θ(log* n)`. Given measured `(n, rounds)` pairs, we
//! fit each candidate model `rounds ≈ a·f(n) + b` by least squares and rank
//! models by residual error, so experiment tables can answer "which growth
//! law does this series follow?" mechanically.

use serde::{Deserialize, Serialize};

/// The candidate growth models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GrowthModel {
    /// `f(n) = 1`.
    Constant,
    /// `f(n) = log* n`.
    LogStar,
    /// `f(n) = log log n`.
    LogLog,
    /// `f(n) = log n`.
    Log,
    /// `f(n) = sqrt(n)`.
    Sqrt,
    /// `f(n) = n`.
    Linear,
}

impl GrowthModel {
    /// All models, in increasing order of growth.
    pub const ALL: [GrowthModel; 6] = [
        GrowthModel::Constant,
        GrowthModel::LogStar,
        GrowthModel::LogLog,
        GrowthModel::Log,
        GrowthModel::Sqrt,
        GrowthModel::Linear,
    ];

    /// Evaluate the model's base function at `n`.
    pub fn eval(&self, n: f64) -> f64 {
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::LogStar => f64::from(local_algorithms::util::log_star(n)),
            GrowthModel::LogLog => n.max(4.0).ln().ln(),
            GrowthModel::Log => n.max(2.0).ln(),
            GrowthModel::Sqrt => n.sqrt(),
            GrowthModel::Linear => n,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            GrowthModel::Constant => "O(1)",
            GrowthModel::LogStar => "log* n",
            GrowthModel::LogLog => "log log n",
            GrowthModel::Log => "log n",
            GrowthModel::Sqrt => "sqrt n",
            GrowthModel::Linear => "n",
        }
    }
}

/// A fitted model with its parameters and error.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fit {
    /// The model.
    pub model: GrowthModel,
    /// Scale `a` in `rounds ≈ a·f(n) + b`.
    pub scale: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Root-mean-square error of the fit.
    pub rmse: f64,
}

/// Least-squares fit of `rounds ≈ a·f(n) + b` for one model.
///
/// # Panics
///
/// Panics if fewer than 2 samples are given.
pub fn fit_model(samples: &[(f64, f64)], model: GrowthModel) -> Fit {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let k = samples.len() as f64;
    let xs: Vec<f64> = samples.iter().map(|&(n, _)| model.eval(n)).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = k * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-12 {
        (0.0, sy / k) // constant predictor (e.g. the Constant model)
    } else {
        let a = (k * sxy - sx * sy) / denom;
        (a, (sy - a * sx) / k)
    };
    let mse: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            let e = y - (a * x + b);
            e * e
        })
        .sum::<f64>()
        / k;
    Fit {
        model,
        scale: a,
        intercept: b,
        rmse: mse.sqrt(),
    }
}

/// Fit every model and return them sorted by ascending error.
///
/// Models whose fitted scale is negative (the data *shrinks* in the model's
/// direction) are penalized to the back of the ranking: a growth law with a
/// negative coefficient is not an explanation.
pub fn rank_models(samples: &[(f64, f64)]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = GrowthModel::ALL
        .iter()
        .map(|&m| fit_model(samples, m))
        .collect();
    fits.sort_by(|x, y| {
        let px = x.rmse + if x.scale < -1e-9 { 1e9 } else { 0.0 };
        let py = y.rmse + if y.scale < -1e-9 { 1e9 } else { 0.0 };
        px.partial_cmp(&py).expect("finite errors")
    });
    fits
}

/// The best-fitting model.
///
/// # Panics
///
/// Panics if fewer than 2 samples are given.
pub fn best_model(samples: &[(f64, f64)]) -> Fit {
    rank_models(samples)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn recovers_log() {
        let s = series(|n| 3.0 * n.ln() + 2.0);
        let best = best_model(&s);
        assert_eq!(best.model, GrowthModel::Log);
        assert!((best.scale - 3.0).abs() < 0.1);
    }

    #[test]
    fn recovers_loglog() {
        let s = series(|n| 5.0 * n.ln().ln() + 1.0);
        assert_eq!(best_model(&s).model, GrowthModel::LogLog);
    }

    #[test]
    fn recovers_linear() {
        let s = series(|n| 0.5 * n);
        assert_eq!(best_model(&s).model, GrowthModel::Linear);
    }

    #[test]
    fn recovers_constant() {
        let s = series(|_| 7.0);
        let best = best_model(&s);
        assert!(best.rmse < 1e-9);
        assert!(matches!(
            best.model,
            GrowthModel::Constant | GrowthModel::LogStar
        ));
    }

    #[test]
    fn negative_scales_are_penalized() {
        // Decreasing data should not be "explained" by a growth law.
        let s = series(|n| 100.0 - n.ln());
        let best = best_model(&s);
        assert!(best.scale >= -1e-9 || best.model == GrowthModel::Constant);
    }

    #[test]
    fn log_beats_loglog_on_log_data() {
        let s = series(|n| 2.0 * n.ln());
        let ranked = rank_models(&s);
        let pos_log = ranked.iter().position(|f| f.model == GrowthModel::Log);
        let pos_ll = ranked.iter().position(|f| f.model == GrowthModel::LogLog);
        assert!(pos_log < pos_ll);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn rejects_tiny_input() {
        let _ = fit_model(&[(1.0, 1.0)], GrowthModel::Log);
    }
}
