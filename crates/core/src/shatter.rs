//! Graph shattering, measured.
//!
//! Theorem 3's takeaway: every optimal RandLOCAL algorithm must, in effect,
//! run a randomized phase that *shatters* the graph — leaving undecided
//! vertices only in components of size `poly(log n)` — and then finish those
//! components with the best deterministic algorithm. This module provides
//! the measurement side: given the mask of undecided vertices after any
//! randomized phase, compute the component-size profile that the shattering
//! lemmas (e.g. Lemma 3 of the paper, via distance-k sets) bound.

use local_graphs::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Component-size profile of the vertices left undecided by a randomized
/// phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShatterProfile {
    /// Total undecided vertices.
    pub undecided: usize,
    /// Sizes of the connected components induced by undecided vertices,
    /// descending.
    pub component_sizes: Vec<usize>,
}

impl ShatterProfile {
    /// Number of components.
    pub fn components(&self) -> usize {
        self.component_sizes.len()
    }

    /// Size of the largest component (0 when no vertex is undecided).
    pub fn largest(&self) -> usize {
        self.component_sizes.first().copied().unwrap_or(0)
    }

    /// Whether the profile satisfies the shattering bound
    /// `largest ≤ c·Δ⁴·log₂ n` (the Theorem-10 analysis bound with an
    /// explicit constant).
    pub fn within_bound(&self, n: usize, delta: usize, c: f64) -> bool {
        let bound = c * (delta as f64).powi(4) * (n.max(2) as f64).log2();
        (self.largest() as f64) <= bound
    }
}

/// Compute the profile of the subgraph induced by `undecided`.
///
/// # Panics
///
/// Panics if `undecided.len() != g.n()`.
pub fn shatter_profile(g: &Graph, undecided: &[bool]) -> ShatterProfile {
    assert_eq!(undecided.len(), g.n(), "one flag per vertex");
    let mut seen = vec![false; g.n()];
    let mut sizes: Vec<usize> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    for start in g.vertices() {
        if !undecided[start] || seen[start] {
            continue;
        }
        seen[start] = true;
        stack.push(start);
        let mut size = 0;
        while let Some(u) = stack.pop() {
            size += 1;
            for nb in g.neighbors(u) {
                if undecided[nb.node] && !seen[nb.node] {
                    seen[nb.node] = true;
                    stack.push(nb.node);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    ShatterProfile {
        undecided: undecided.iter().filter(|&&u| u).count(),
        component_sizes: sizes,
    }
}

/// Count the distance-`k` sets of size `t` containing a given vertex — the
/// combinatorial quantity of the paper's Lemma 3 (`≤ 4^t·n·Δ^(k(t−1))`
/// total). Exposed as an exact counter on small graphs so the lemma's bound
/// can be sanity-checked by tests.
///
/// A distance-`k` set is a set of vertices that is pairwise at distance ≥ k
/// and connected in the "exactly distance k" graph `G^{=k}`… for testing we
/// count connected vertex sets of size `t` in `G^k` whose members are
/// pairwise at distance ≥ k in `G` (matching the paper's Definition).
///
/// Exponential in `t`; intended for `t ≤ 4`, `n ≤ 100`.
pub fn count_distance_k_sets(g: &Graph, k: usize, t: usize) -> usize {
    assert!(k >= 1 && t >= 1, "k and t must be positive");
    // Precompute pairwise distances (small graphs only).
    let dist: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| local_graphs::analysis::bfs_distances(g, v))
        .collect();
    // DFS over growing sets, extending by vertices at distance exactly k
    // from some member (connectivity in G^{=k}) and ≥ k from all members.
    fn extend(
        dist: &[Vec<usize>],
        n: usize,
        k: usize,
        t: usize,
        set: &mut Vec<NodeId>,
        count: &mut usize,
    ) {
        if set.len() == t {
            *count += 1;
            return;
        }
        let anchor = *set.last().expect("nonempty");
        // To avoid duplicates: only extend with vertices larger than the
        // minimum… sets are counted once per canonical (sorted) growth order:
        // require new > max(set) keeps each set counted at most once but may
        // miss growth orders; instead collect candidates connected to ANY
        // member and dedupe by requiring new > set[0] and sortedness of
        // insertion order is not connectivity-complete. For the test scale we
        // accept counting *labeled growth sequences* normalized by requiring
        // strictly increasing ids, which undercounts relative to the lemma's
        // bound (still a valid sanity check since the lemma is an upper
        // bound).
        let _ = anchor;
        let max_in_set = *set.iter().max().expect("nonempty");
        for cand in (max_in_set + 1)..n {
            let connected = set.iter().any(|&m| dist[m][cand] == k);
            let spread = set.iter().all(|&m| dist[m][cand] >= k);
            if connected && spread {
                set.push(cand);
                extend(dist, n, k, t, set, count);
                set.pop();
            }
        }
    }
    let mut count = 0;
    for v in g.vertices() {
        let mut set = vec![v];
        extend(&dist, g.n(), k, t, &mut set, &mut count);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn profile_of_empty_mask() {
        let g = gen::cycle(8);
        let p = shatter_profile(&g, &[false; 8]);
        assert_eq!(p.undecided, 0);
        assert_eq!(p.components(), 0);
        assert_eq!(p.largest(), 0);
        assert!(p.within_bound(8, 3, 1.0));
    }

    #[test]
    fn profile_counts_components() {
        let g = gen::path(7);
        let mask = vec![true, true, false, true, false, true, true];
        let p = shatter_profile(&g, &mask);
        assert_eq!(p.undecided, 5);
        assert_eq!(p.component_sizes, vec![2, 2, 1]);
        assert_eq!(p.largest(), 2);
    }

    #[test]
    fn bound_check() {
        let g = gen::path(4);
        let p = shatter_profile(&g, &[true; 4]);
        assert_eq!(p.largest(), 4);
        // Δ=2: bound c·16·log2(4) = 32c — true for c = 1, false for tiny c.
        assert!(p.within_bound(4, 2, 1.0));
        assert!(!p.within_bound(4, 2, 0.01));
    }

    #[test]
    fn distance_k_sets_on_path() {
        // Path 0-1-2-3-4, k = 2, t = 2: sets {i, i+2} → {0,2},{1,3},{2,4}
        // plus {0,3}? dist(0,3)=3 ≥ 2 but connectivity needs distance
        // exactly 2 — no. {0,2},{1,3},{2,4} = 3.
        let g = gen::path(5);
        assert_eq!(count_distance_k_sets(&g, 2, 2), 3);
    }

    #[test]
    fn distance_k_singletons_are_all_vertices() {
        let g = gen::cycle(6);
        assert_eq!(count_distance_k_sets(&g, 2, 1), 6);
    }

    #[test]
    fn lemma3_upper_bound_holds() {
        // Lemma 3: #distance-k sets of size t < 4^t · n · Δ^(k(t−1)).
        let g = gen::cycle(10);
        for (k, t) in [(2usize, 2usize), (2, 3), (3, 2)] {
            let counted = count_distance_k_sets(&g, k, t);
            let bound = 4f64.powi(t as i32)
                * (g.n() as f64)
                * (g.max_degree() as f64).powi((k * (t - 1)) as i32);
            assert!(
                (counted as f64) < bound,
                "k={k} t={t}: counted {counted} ≥ bound {bound}"
            );
        }
    }
}
