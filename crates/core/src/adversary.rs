//! Worst-case fault-plan search: a deterministic tabu optimizer over the
//! [`FaultPlan`] move neighborhood.
//!
//! E12/E13 sample fault plans *randomly* from a [`FaultSpec`] grid and report
//! how the paper's algorithms degrade and recover on average. This module is
//! the adversarial counterpart: instead of sampling, it *searches* the plan
//! space for the worst case — the crash schedule and hard edge-drop set that
//! maximizes a chosen damage [`Objective`] against a concrete workload. The
//! search is classic attribute-tabu local search (PARTIALCOL-style): each
//! iteration proposes a fixed number of candidate moves from
//! [`FaultPlan::propose`], filters the ones that would exceed the adversary's
//! fault budget, scores the mutated plans with a caller-supplied evaluator,
//! and commits the best admissible candidate — recently touched attributes
//! (a vertex's crash slot, an edge's drop slot) are tabu for a tenure unless
//! the move beats the best plan found so far (aspiration).
//!
//! Everything is a pure function of `(graph, start plan, config)`: move
//! proposals replay from [`FaultMove::seed`]`(search_seed, step)`, candidate
//! ties break on proposal order, and the evaluator is required to be
//! deterministic. Rerunning a search with the same inputs reproduces the
//! same trajectory, the same [`SearchOutcome`], and byte-identical artifact
//! JSON — the property the pinned-adversary replay gate in CI asserts.
//!
//! [`FaultSpec`]: local_model::FaultSpec

use local_graphs::Graph;
use local_model::{FaultMove, FaultPlan};
use local_obs::{EventData, MetricId, MetricSet, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Score scale separating an objective's primary axis from its tie-breaker
/// (primary counts stay far below this in any workload the repo runs).
const SCALE: u64 = 1 << 20;

/// What the adversary maximizes. Every objective folds an [`Evaluation`]
/// into a single `u64` score: the primary axis scaled by [`SCALE`] plus a
/// secondary tie-breaker, so "strictly larger score" always means "strictly
/// worse for the algorithm" on the primary axis first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// The boundary radius recovery needed (degraded runs count as
    /// `max_radius + 1`); ties broken by residual violations.
    RecoveryRadius,
    /// Budget breaches of the recovery attempts; ties broken by radius.
    BudgetBreaches,
    /// Residual `check_partial` violations of the base run; ties broken by
    /// radius.
    ResidualViolations,
    /// Crashed plus budget-cut vertices of the base run; ties broken by
    /// radius.
    CrashedCut,
}

impl Objective {
    /// Every objective, in the order the E14 grid sweeps them.
    pub const ALL: [Objective; 4] = [
        Objective::RecoveryRadius,
        Objective::BudgetBreaches,
        Objective::ResidualViolations,
        Objective::CrashedCut,
    ];

    /// The stable snake_case name used in artifacts, rows, and trace output.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::RecoveryRadius => "recovery_radius",
            Objective::BudgetBreaches => "budget_breaches",
            Objective::ResidualViolations => "residual_violations",
            Objective::CrashedCut => "crashed_cut",
        }
    }

    /// Parse a [`name`](Objective::name) back into the objective.
    pub fn from_name(name: &str) -> Option<Objective> {
        Objective::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Fold an evaluation into the scalar the search maximizes.
    pub fn score(&self, e: &Evaluation) -> u64 {
        match self {
            Objective::RecoveryRadius => u64::from(e.radius) * SCALE + e.violations.min(SCALE - 1),
            Objective::BudgetBreaches => e.breaches * SCALE + u64::from(e.radius),
            Objective::ResidualViolations => e.violations * SCALE + u64::from(e.radius),
            Objective::CrashedCut => (e.crashed + e.cut) * SCALE + u64::from(e.radius),
        }
    }
}

impl serde::Serialize for Objective {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_string())
    }
}

impl serde::Deserialize for Objective {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let name = String::from_value(v)?;
        Objective::from_name(&name)
            .ok_or_else(|| serde::DeError(format!("unknown objective `{name}`")))
    }
}

/// What one evaluation of a candidate plan measured: the damage census the
/// objectives score. Produced by a workload-specific evaluator (run the
/// faulty execution, attempt recovery, fold the [`DegradedRun`] or
/// [`Recovery`] into counts).
///
/// [`DegradedRun`]: local_algorithms::DegradedRun
/// [`Recovery`]: local_algorithms::Recovery
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Boundary radius recovery needed; a plan that defeats recovery
    /// entirely reports the policy's `max_radius + 1`.
    pub radius: u32,
    /// Whether recovery was defeated (the run ended in a `DegradedRun`).
    pub degraded: bool,
    /// Budget breaches across the recovery attempt trail.
    pub breaches: u64,
    /// Residual `check_partial` violations of the surviving partial labeling.
    pub violations: u64,
    /// Vertices the plan crashed in the base run.
    pub crashed: u64,
    /// Vertices the base run's budget cut.
    pub cut: u64,
}

/// The knobs of one tabu search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SearchConfig {
    /// Search iterations (one committed move per iteration, at most).
    pub iterations: u64,
    /// Candidate moves proposed per iteration.
    pub candidates: u32,
    /// Iterations a touched attribute stays tabu.
    pub tenure: u32,
    /// Maximum vertices the plan may crash (a move that would schedule a
    /// crash on a *new* vertex past this cap is inadmissible; re-timing an
    /// already-crashed vertex is always allowed).
    pub crash_budget: usize,
    /// Maximum directed edges the plan may hard-drop.
    pub drop_budget: usize,
    /// Crash rounds are proposed from `0..crash_window.max(1)`.
    pub crash_window: u32,
    /// Seed of the move-proposal stream (see [`FaultMove::seed`]).
    pub search_seed: u64,
}

/// What a search found.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best plan encountered anywhere on the trajectory.
    pub best_plan: FaultPlan,
    /// Its score under the search objective.
    pub best_objective: u64,
    /// Its full evaluation.
    pub best_eval: Evaluation,
    /// Moves committed (iterations that were not stuck).
    pub accepted: u64,
    /// Evaluator calls spent (the search's real cost unit).
    pub evaluations: u64,
}

/// Whether committing `mv` on `plan` would stay inside the adversary's
/// fault budget.
fn admissible(plan: &FaultPlan, mv: &FaultMove, cfg: &SearchConfig) -> bool {
    match *mv {
        FaultMove::SetCrash { v, .. } => {
            let already = plan.crash_schedule().get(v).copied().flatten().is_some();
            already || plan.crash_count() < cfg.crash_budget
        }
        FaultMove::ClearCrash { .. } => true,
        FaultMove::ToggleDrop { slot } => {
            let turning_on = plan.edge_drop(slot) == 0.0;
            !turning_on || plan.dropped_edge_count() < cfg.drop_budget
        }
    }
}

/// Run the tabu search from `start`, maximizing `objective` under
/// `evaluate`. The evaluator must be a deterministic function of the plan
/// (run the workload at a fixed seed); the search itself adds no
/// nondeterminism.
///
/// With a trace attached, every iteration emits one `search_iter` event
/// carrying the committed move (or `stuck` when no candidate was
/// admissible), the committed score, and the running best. With a metric
/// recorder attached, the search adds its iteration/acceptance/evaluation
/// totals to the `search_*` counters and raises the `search_best_objective`
/// gauge to the best score found.
pub fn search<F>(
    g: &Graph,
    start: FaultPlan,
    objective: Objective,
    cfg: &SearchConfig,
    evaluate: F,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
) -> SearchOutcome
where
    F: Fn(&FaultPlan) -> Evaluation,
{
    let mut current = start;
    let current_eval = evaluate(&current);
    let mut current_score = objective.score(&current_eval);
    let mut best_plan = current.clone();
    let mut best_eval = current_eval;
    let mut best_score = current_score;
    let mut accepted = 0u64;
    let mut evaluations = 1u64;
    // Attribute → first iteration it is free again.
    let mut tabu: HashMap<u64, u64> = HashMap::new();

    for iter in 0..cfg.iterations {
        let mut chosen: Option<(FaultMove, FaultPlan, Evaluation, u64)> = None;
        for c in 0..u64::from(cfg.candidates) {
            let step = iter * u64::from(cfg.candidates) + c;
            let mv = current.propose(g, FaultMove::seed(cfg.search_seed, step), cfg.crash_window);
            if !admissible(&current, &mv, cfg) {
                continue;
            }
            let mut cand = current.clone();
            cand.apply(g, &mv);
            if cand == current {
                continue; // no-op (e.g. re-toggling into the same state)
            }
            let eval = evaluate(&cand);
            evaluations += 1;
            let s = objective.score(&eval);
            let is_tabu = tabu.get(&mv.key()).is_some_and(|&free| free > iter);
            if is_tabu && s <= best_score {
                continue; // aspiration: tabu yields only to a new global best
            }
            // Strict > keeps ties on the earliest proposal: deterministic.
            if chosen.as_ref().is_none_or(|(.., cs)| s > *cs) {
                chosen = Some((mv, cand, eval, s));
            }
        }
        let (label, committed, took) = match chosen {
            Some((mv, cand, eval, s)) => {
                tabu.insert(mv.key(), iter + u64::from(cfg.tenure));
                current = cand;
                current_score = s;
                accepted += 1;
                if s > best_score {
                    best_score = s;
                    best_plan = current.clone();
                    best_eval = eval;
                }
                (mv.describe(), s, true)
            }
            None => ("stuck".to_string(), current_score, false),
        };
        if let Some(tr) = trace {
            tr.emit(EventData::SearchIter {
                iteration: iter,
                objective: committed,
                best: best_score,
                mv: label,
                accepted: took,
                tenure: cfg.tenure,
            });
        }
    }

    if let Some(ms) = metrics {
        ms.add(MetricId::SearchIterations, cfg.iterations);
        ms.add(MetricId::SearchAccepted, accepted);
        ms.add(MetricId::SearchEvaluations, evaluations);
        ms.gauge_max(MetricId::SearchBestObjective, best_score);
    }
    SearchOutcome {
        best_plan,
        best_objective: best_score,
        best_eval,
        accepted,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use local_obs::MemorySink;

    /// A synthetic evaluator that needs no engine run: damage is just the
    /// plan's own fault counts, so the search optimum is the budget cap.
    fn census(p: &FaultPlan) -> Evaluation {
        Evaluation {
            radius: 0,
            degraded: false,
            breaches: 0,
            violations: p.crash_count() as u64,
            crashed: p.crash_count() as u64,
            cut: p.dropped_edge_count() as u64,
        }
    }

    fn cfg() -> SearchConfig {
        SearchConfig {
            iterations: 60,
            candidates: 8,
            tenure: 5,
            crash_budget: 3,
            drop_budget: 4,
            crash_window: 4,
            search_seed: 0xE14,
        }
    }

    #[test]
    fn search_is_deterministic() {
        let g = gen::cycle(12);
        let a = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &cfg(),
            census,
            None,
            None,
        );
        let b = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &cfg(),
            census,
            None,
            None,
        );
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.best_eval, b.best_eval);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(
            serde_json::to_string(&a.best_plan).unwrap(),
            serde_json::to_string(&b.best_plan).unwrap()
        );
    }

    #[test]
    fn search_respects_fault_budgets_and_reaches_the_cap() {
        let g = gen::cycle(12);
        let c = cfg();
        let out = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &c,
            census,
            None,
            None,
        );
        assert!(out.best_plan.crash_count() <= c.crash_budget);
        assert!(out.best_plan.dropped_edge_count() <= c.drop_budget);
        // CrashedCut's optimum under the census evaluator is both caps
        // saturated; 60 iterations on a 12-cycle are plenty to find it.
        assert_eq!(out.best_plan.crash_count(), c.crash_budget);
        assert_eq!(out.best_plan.dropped_edge_count(), c.drop_budget);
        assert_eq!(
            out.best_objective,
            (c.crash_budget + c.drop_budget) as u64 * super::SCALE
        );
        assert!(out.accepted > 0);
        assert!(out.evaluations > out.accepted);
    }

    #[test]
    fn different_seeds_walk_different_trajectories() {
        let g = gen::cycle(12);
        let a = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &cfg(),
            census,
            None,
            None,
        );
        let other = SearchConfig {
            search_seed: 0xBEEF,
            ..cfg()
        };
        let b = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &other,
            census,
            None,
            None,
        );
        // Same optimum score (the evaluator is plan-count symmetric), but the
        // committed fault sets differ with overwhelming probability.
        assert_eq!(a.best_objective, b.best_objective);
        assert_ne!(a.best_plan, b.best_plan);
    }

    #[test]
    fn objectives_score_their_own_axis() {
        let e = Evaluation {
            radius: 2,
            degraded: false,
            breaches: 1,
            violations: 7,
            crashed: 3,
            cut: 4,
        };
        assert_eq!(Objective::RecoveryRadius.score(&e), 2 * SCALE + 7);
        assert_eq!(Objective::BudgetBreaches.score(&e), SCALE + 2);
        assert_eq!(Objective::ResidualViolations.score(&e), 7 * SCALE + 2);
        assert_eq!(Objective::CrashedCut.score(&e), 7 * SCALE + 2);
    }

    #[test]
    fn objective_names_round_trip() {
        for o in Objective::ALL {
            assert_eq!(Objective::from_name(o.name()), Some(o));
            let back = Objective::from_value(&o.to_value()).unwrap();
            assert_eq!(back, o);
        }
        assert_eq!(Objective::from_name("chaos"), None);
        assert!(Objective::from_value(&serde::Value::String("chaos".into())).is_err());
    }

    #[test]
    fn evaluation_serde_round_trips() {
        let e = Evaluation {
            radius: 4,
            degraded: true,
            breaches: 2,
            violations: 9,
            crashed: 5,
            cut: 1,
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Evaluation = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn traced_search_emits_one_event_per_iteration() {
        let g = gen::cycle(12);
        let c = cfg();
        let mut sink = MemorySink::new();
        let trace = Trace::new(0);
        let out = search(
            &g,
            FaultPlan::none(),
            Objective::CrashedCut,
            &c,
            census,
            Some(&trace),
            None,
        );
        trace.drain_into(&mut sink);
        let iters: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match &e.data {
                EventData::SearchIter {
                    iteration,
                    best,
                    accepted,
                    tenure,
                    ..
                } => Some((*iteration, *best, *accepted, *tenure)),
                _ => None,
            })
            .collect();
        assert_eq!(iters.len() as u64, c.iterations);
        // Iterations are sequential and the running best never regresses.
        let mut prev_best = 0;
        for (i, (iteration, best, _, tenure)) in iters.iter().enumerate() {
            assert_eq!(*iteration, i as u64);
            assert!(*best >= prev_best);
            assert_eq!(*tenure, c.tenure);
            prev_best = *best;
        }
        assert_eq!(
            iters.iter().filter(|(.., took, _)| *took).count() as u64,
            out.accepted
        );
        assert_eq!(iters.last().unwrap().1, out.best_objective);
    }
}
