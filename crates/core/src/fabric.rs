//! The crash-tolerant sweep fabric: a coordinator process that shards a
//! sweep into trial-range **leases** and a pool of spawned worker
//! subprocesses that claim, execute, and journal them through the JSON-lines
//! [`Checkpoint`] format.
//!
//! # Protocol
//!
//! The coordinator spawns `workers` copies of its own binary with
//! `--fabric-worker SLOT --fabric-dir DIR` and speaks one JSON object per
//! line over the worker's stdin/stdout:
//!
//! * worker → coordinator: `hello {worker, attempt}` once ready,
//!   `heartbeat {worker}` on a fixed cadence from a dedicated thread,
//!   `done {worker, start, len}` when a lease is fully journaled,
//!   `bye {worker}` on orderly shutdown.
//! * coordinator → worker: `lease {start, len}` to hand out a unit range,
//!   `shutdown` when the sweep is complete.
//!
//! Units are positions in a global flattening of the sweep's grid
//! (point-major, trial-minor — see [`UnitMap`]); each worker journals every
//! finished unit to its own `Checkpoint` at `DIR/worker-SLOT.jsonl` before
//! acknowledging the lease, so a SIGKILL at any instant loses at most the
//! unit in flight.
//!
//! # Failure handling
//!
//! A worker that misses its heartbeat deadline is killed and reaped; its
//! outstanding lease is **reclaimed** (pushed to the front of the pending
//! queue) and re-issued to the next healthy worker. Dead slots respawn under
//! a capped, jittered exponential backoff ([`crate::retry`]); when a slot's
//! respawn budget is exhausted the fabric degrades to fewer workers, and
//! only if *every* slot retires with work remaining does the sweep fail —
//! with a typed [`FabricError::WorkersExhausted`] carrying the full
//! [`WorkerExit`] history, never a panic.
//!
//! # Determinism
//!
//! Every unit's value is a pure function of the sweep config and the
//! per-trial seed, so *which* worker computes it (or how many times, after
//! reclaims) cannot change the bytes. [`merge_journals`] assembles the final
//! result in strict unit order, resolving duplicate records by scanning
//! worker journals in ascending slot order — a fixed rule, so the merged
//! report of a chaos-ridden fabric run is byte-identical to a serial
//! [`TrialPlan`](crate::trials::TrialPlan) run of the same spec.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::retry::{Backoff, RetryPolicy};
use local_obs::{EventData, ProgressMeter, Trace, TraceSink};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One grid point of a sweep: its checkpoint scope and how many trials
/// (units) it contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// The scope string its units are journaled under (embeds workload,
    /// grid coordinates, and master seed — same contract as `--checkpoint`).
    pub scope: String,
    /// Number of trials at this point (0 for error placeholders that fold
    /// to a fixed row without running anything).
    pub trials: u64,
}

/// A sweep the fabric can shard: an ordered list of points plus a pure
/// unit-executor. Implementations capture the experiment config; `run_unit`
/// must depend only on `(point, index)` so re-execution after a reclaim is
/// bit-identical.
pub trait Sweep: Sync {
    /// The grid, in the exact order the serial run folds it.
    fn points(&self) -> &[SweepPoint];
    /// Execute trial `index` of point `point` and encode its outcome
    /// (panic-isolated — see [`run_unit_isolated`]).
    fn run_unit(&self, point: usize, index: u64) -> Value;
}

/// The flattening between global unit indices and `(point, trial)` pairs:
/// point-major, trial-minor, matching the serial fold order.
#[derive(Debug, Clone)]
pub struct UnitMap {
    /// `offsets[p]` = first global unit of point `p`; one extra entry holds
    /// the total.
    offsets: Vec<u64>,
}

impl UnitMap {
    /// Build the map for a point list.
    pub fn new(points: &[SweepPoint]) -> UnitMap {
        let mut offsets = Vec::with_capacity(points.len() + 1);
        let mut total = 0u64;
        offsets.push(0);
        for p in points {
            total += p.trials;
            offsets.push(total);
        }
        UnitMap { offsets }
    }

    /// Total units across all points.
    pub fn total(&self) -> u64 {
        *self.offsets.last().expect("offsets never empty")
    }

    /// The `(point, trial-index)` a global unit maps to.
    ///
    /// # Panics
    ///
    /// If `unit >= total()`.
    pub fn locate(&self, unit: u64) -> (usize, u64) {
        assert!(unit < self.total(), "unit {unit} out of range");
        // First offset strictly greater than `unit` ends the point.
        let point = self.offsets.partition_point(|&off| off <= unit) - 1;
        (point, unit - self.offsets[point])
    }

    /// Split a flat unit-ordered value list back into per-point groups
    /// (zero-trial points yield empty groups).
    ///
    /// # Panics
    ///
    /// If `values.len()` does not equal `total()`.
    pub fn group(&self, values: Vec<Value>) -> Vec<Vec<Value>> {
        assert_eq!(values.len() as u64, self.total(), "value count mismatch");
        let mut groups = Vec::with_capacity(self.offsets.len() - 1);
        let mut values = values.into_iter();
        for w in self.offsets.windows(2) {
            let len = (w[1] - w[0]) as usize;
            groups.push(values.by_ref().take(len).collect());
        }
        groups
    }
}

/// Execute `f` with panic isolation and encode the outcome exactly as the
/// serial checkpointed path does (`{"ok": R}` / `{"panicked": msg}`), so
/// fabric journals and `--checkpoint` journals speak the same format.
pub fn run_unit_isolated<R: Serialize>(f: impl FnOnce() -> R) -> Value {
    let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => crate::trials::TrialOutcome::Ok(value),
        Err(payload) => crate::trials::TrialOutcome::Panicked {
            message: crate::trials::panic_message(payload.as_ref()),
        },
    };
    crate::trials::encode_outcome(&outcome)
}

/// Decode a journaled unit value back into a trial outcome; `None` for any
/// shape mismatch.
pub fn decode_unit<R: Deserialize>(v: &Value) -> Option<crate::trials::TrialOutcome<R>> {
    crate::trials::decode_outcome(v)
}

/// The scope string every worker journal is stamped with: a fingerprint of
/// the whole sweep (every point scope — which embed config and master seed —
/// plus the unit count), so a journal from a drifted config fails
/// [`Checkpoint::check_scope`] instead of being silently mixed in.
pub fn journal_scope(points: &[SweepPoint]) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut total = 0u64;
    for p in points {
        absorb(p.scope.as_bytes());
        absorb(&[0xff]);
        absorb(&p.trials.to_le_bytes());
        total += p.trials;
    }
    format!("fabric/v1/{hash:016x}/units={total}")
}

/// The journal path of worker `slot` under `dir`.
pub fn journal_path(dir: &Path, slot: u64) -> PathBuf {
    dir.join(format!("worker-{slot}.jsonl"))
}

/// A contiguous range of global units handed to one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// First unit of the range.
    pub start: u64,
    /// Number of units.
    pub len: u64,
}

/// The coordinator's bookkeeping of which units are pending, leased, or
/// complete. Pure data — no I/O — so reclaim/duplicate interleavings are
/// directly testable (and proptested).
#[derive(Debug, Clone)]
pub struct LeaseLedger {
    pending: VecDeque<Lease>,
    outstanding: Vec<Option<Lease>>,
    completed: u64,
    total: u64,
}

impl LeaseLedger {
    /// Shard `total` units into leases of (at most) `lease_len` units for
    /// `slots` workers.
    pub fn new(total: u64, lease_len: u64, slots: usize) -> LeaseLedger {
        let lease_len = lease_len.max(1);
        let mut pending = VecDeque::new();
        let mut start = 0;
        while start < total {
            let len = lease_len.min(total - start);
            pending.push_back(Lease { start, len });
            start += len;
        }
        LeaseLedger {
            pending,
            outstanding: vec![None; slots],
            completed: 0,
            total,
        }
    }

    /// Hand the next pending lease to `slot`. `None` if the slot already
    /// holds a lease (one at a time) or nothing is pending.
    pub fn grant(&mut self, slot: usize) -> Option<Lease> {
        if self.outstanding[slot].is_some() {
            return None;
        }
        let lease = self.pending.pop_front()?;
        self.outstanding[slot] = Some(lease);
        Some(lease)
    }

    /// Record a completion report from `slot`. Only a report matching the
    /// slot's outstanding lease counts; duplicates and stale reports (e.g.
    /// a lease that was reclaimed and finished elsewhere) are ignored, so
    /// no unit is ever counted twice.
    pub fn complete(&mut self, slot: usize, start: u64, len: u64) -> bool {
        match &self.outstanding[slot] {
            Some(l) if l.start == start && l.len == len => {
                self.outstanding[slot] = None;
                self.completed += len;
                true
            }
            _ => false,
        }
    }

    /// Take back `slot`'s outstanding lease (it died) and requeue it at the
    /// *front* of the pending queue, so recovery work happens first.
    pub fn reclaim(&mut self, slot: usize) -> Option<Lease> {
        let lease = self.outstanding[slot].take()?;
        self.pending.push_front(lease);
        Some(lease)
    }

    /// The lease `slot` currently holds, if any.
    pub fn outstanding(&self, slot: usize) -> Option<&Lease> {
        self.outstanding[slot].as_ref()
    }

    /// Units not yet completed.
    pub fn remaining(&self) -> u64 {
        self.total - self.completed
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.completed
    }

    /// Total units in the sweep.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Has every unit been completed?
    pub fn is_done(&self) -> bool {
        self.completed == self.total
    }
}

/// Worker → coordinator protocol messages. (Hand-written serde — the derive
/// macro does not cover data-carrying enums.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// The worker is up and ready for a lease.
    Hello {
        /// Worker slot.
        worker: u64,
        /// Spawn attempt (0 = first launch).
        attempt: u32,
    },
    /// Liveness signal, sent on a fixed cadence from a dedicated thread.
    Heartbeat {
        /// Worker slot.
        worker: u64,
        /// Units this attempt has journaled so far — the coordinator's live
        /// telemetry snapshot (progress line, final census).
        units: u64,
    },
    /// A lease is fully journaled.
    Done {
        /// Worker slot.
        worker: u64,
        /// Lease start unit.
        start: u64,
        /// Lease length.
        len: u64,
    },
    /// Orderly shutdown acknowledgment.
    Bye {
        /// Worker slot.
        worker: u64,
    },
}

impl Serialize for WorkerMsg {
    fn to_value(&self) -> Value {
        let (tag, mut fields): (&str, Vec<(String, Value)>) = match self {
            WorkerMsg::Hello { worker, attempt } => (
                "hello",
                vec![
                    ("worker".into(), Value::U64(*worker)),
                    ("attempt".into(), Value::U64(u64::from(*attempt))),
                ],
            ),
            WorkerMsg::Heartbeat { worker, units } => (
                "heartbeat",
                vec![
                    ("worker".into(), Value::U64(*worker)),
                    ("units".into(), Value::U64(*units)),
                ],
            ),
            WorkerMsg::Done { worker, start, len } => (
                "done",
                vec![
                    ("worker".into(), Value::U64(*worker)),
                    ("start".into(), Value::U64(*start)),
                    ("len".into(), Value::U64(*len)),
                ],
            ),
            WorkerMsg::Bye { worker } => ("bye", vec![("worker".into(), Value::U64(*worker))]),
        };
        let mut obj = vec![("msg".to_string(), Value::String(tag.to_string()))];
        obj.append(&mut fields);
        Value::Object(obj)
    }
}

impl Deserialize for WorkerMsg {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(v.field("msg")?)?;
        let worker = u64::from_value(v.field("worker")?)?;
        match tag.as_str() {
            "hello" => Ok(WorkerMsg::Hello {
                worker,
                attempt: u32::from_value(v.field("attempt")?)?,
            }),
            "heartbeat" => Ok(WorkerMsg::Heartbeat {
                worker,
                units: u64::from_value(v.field("units")?)?,
            }),
            "done" => Ok(WorkerMsg::Done {
                worker,
                start: u64::from_value(v.field("start")?)?,
                len: u64::from_value(v.field("len")?)?,
            }),
            "bye" => Ok(WorkerMsg::Bye { worker }),
            other => Err(DeError(format!("unknown worker message `{other}`"))),
        }
    }
}

/// Coordinator → worker protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    /// Execute (and journal) this unit range, then report `done`.
    Lease {
        /// First unit.
        start: u64,
        /// Number of units.
        len: u64,
    },
    /// The sweep is complete; exit cleanly.
    Shutdown,
}

impl Serialize for CoordMsg {
    fn to_value(&self) -> Value {
        match self {
            CoordMsg::Lease { start, len } => Value::Object(vec![
                ("msg".into(), Value::String("lease".into())),
                ("start".into(), Value::U64(*start)),
                ("len".into(), Value::U64(*len)),
            ]),
            CoordMsg::Shutdown => {
                Value::Object(vec![("msg".into(), Value::String("shutdown".into()))])
            }
        }
    }
}

impl Deserialize for CoordMsg {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = String::from_value(v.field("msg")?)?;
        match tag.as_str() {
            "lease" => Ok(CoordMsg::Lease {
                start: u64::from_value(v.field("start")?)?,
                len: u64::from_value(v.field("len")?)?,
            }),
            "shutdown" => Ok(CoordMsg::Shutdown),
            other => Err(DeError(format!("unknown coordinator message `{other}`"))),
        }
    }
}

/// Fabric tuning knobs. [`FabricConfig::from_env`] applies the
/// `LOCAL_FABRIC_*` environment overrides (used by the chaos tests to
/// shrink deadlines to test scale).
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of worker slots.
    pub workers: u64,
    /// Worker heartbeat cadence in ms (`LOCAL_FABRIC_HEARTBEAT_MS`).
    pub heartbeat_ms: u64,
    /// Silence threshold after which a worker is declared dead and killed,
    /// in ms (`LOCAL_FABRIC_DEADLINE_MS`).
    pub deadline_ms: u64,
    /// Units per lease; `None` auto-sizes to `total / (workers * 4)`,
    /// clamped to at least 1 (`LOCAL_FABRIC_LEASE_LEN`).
    pub lease_len: Option<u64>,
    /// Respawn backoff policy; the budget is per slot
    /// (`LOCAL_FABRIC_RESPAWN_BUDGET` overrides the budget).
    pub respawn: RetryPolicy,
    /// Journal fsync cadence, 0 = flush-only (`LOCAL_FABRIC_FSYNC_EVERY`).
    pub fsync_every: u64,
    /// How long to wait for workers to exit after `shutdown` before killing
    /// them, in ms.
    pub shutdown_grace_ms: u64,
    /// Print worker-lifecycle notices to stderr.
    pub verbose: bool,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

impl FabricConfig {
    /// Defaults: 250 ms heartbeats, 5 s deadline, auto lease sizing, 3
    /// respawns per slot (100 ms → 2 s backoff), flush-only journals.
    pub fn new(workers: u64) -> FabricConfig {
        FabricConfig {
            workers,
            heartbeat_ms: 250,
            deadline_ms: 5_000,
            lease_len: None,
            respawn: RetryPolicy::new(100, 2_000, 3),
            fsync_every: 0,
            shutdown_grace_ms: 2_000,
            verbose: true,
        }
    }

    /// Defaults plus `LOCAL_FABRIC_*` environment overrides. Workers
    /// inherit the coordinator's environment, so both sides read the same
    /// knobs.
    pub fn from_env(workers: u64) -> FabricConfig {
        let mut cfg = FabricConfig::new(workers);
        if let Some(v) = env_u64("LOCAL_FABRIC_HEARTBEAT_MS") {
            cfg.heartbeat_ms = v.max(1);
        }
        if let Some(v) = env_u64("LOCAL_FABRIC_DEADLINE_MS") {
            cfg.deadline_ms = v.max(1);
        }
        if let Some(v) = env_u64("LOCAL_FABRIC_LEASE_LEN") {
            cfg.lease_len = Some(v.max(1));
        }
        if let Some(v) = env_u64("LOCAL_FABRIC_RESPAWN_BUDGET") {
            cfg.respawn.budget = u32::try_from(v).unwrap_or(u32::MAX);
        }
        if let Some(v) = env_u64("LOCAL_FABRIC_FSYNC_EVERY") {
            cfg.fsync_every = v;
        }
        cfg
    }

    fn lease_len_for(&self, total: u64) -> u64 {
        self.lease_len
            .unwrap_or_else(|| (total / (self.workers.max(1) * 4)).max(1))
    }
}

/// Why one worker attempt ended abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitCause {
    /// The process exited on its own with this status code.
    Exited(i32),
    /// The process was terminated by a signal (e.g. SIGKILL).
    Signaled,
    /// It went silent past the heartbeat deadline and was killed by the
    /// coordinator.
    HeartbeatLost,
}

impl ExitCause {
    /// A short label for traces and summaries.
    pub fn label(&self) -> String {
        match self {
            ExitCause::Exited(code) => format!("exit({code})"),
            ExitCause::Signaled => "signal".to_string(),
            ExitCause::HeartbeatLost => "heartbeat_lost".to_string(),
        }
    }
}

/// One abnormal worker death, as reported in [`FabricReport::exits`] and
/// [`FabricError::WorkersExhausted`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerExit {
    /// Worker slot.
    pub worker: u64,
    /// The spawn attempt that died.
    pub attempt: u32,
    /// How it died.
    pub cause: ExitCause,
    /// Whether it held a lease that had to be reclaimed.
    pub lease_lost: bool,
}

impl fmt::Display for WorkerExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {} attempt {}: {}{}",
            self.worker,
            self.attempt,
            self.cause.label(),
            if self.lease_lost {
                " (lease reclaimed)"
            } else {
                ""
            }
        )
    }
}

/// Why a fabric sweep failed. Every variant is a report, not a panic.
#[derive(Debug)]
pub enum FabricError {
    /// An I/O operation failed; `context` says which.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error text.
        error: String,
    },
    /// A worker journal could not be opened, was locked, or carries a
    /// different sweep's scope.
    Journal(CheckpointError),
    /// Every worker slot exhausted its respawn budget with units left.
    WorkersExhausted {
        /// Units never completed.
        remaining_units: u64,
        /// The full death history.
        exits: Vec<WorkerExit>,
    },
    /// The merged journals do not cover every unit (a Done was reported for
    /// units that were never journaled — should not happen).
    MissingUnits {
        /// How many units have no record.
        missing: u64,
        /// The lowest uncovered unit index.
        first: u64,
    },
    /// The fabric was asked to run with zero workers.
    NoWorkers,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Io { context, error } => write!(f, "fabric I/O: {context}: {error}"),
            FabricError::Journal(err) => write!(f, "fabric journal: {err}"),
            FabricError::WorkersExhausted {
                remaining_units,
                exits,
            } => {
                write!(
                    f,
                    "every worker slot exhausted its respawn budget with {remaining_units} \
                     unit(s) incomplete; deaths: "
                )?;
                for (i, e) in exits.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            FabricError::MissingUnits { missing, first } => write!(
                f,
                "merged journals are missing {missing} unit(s), first at index {first}"
            ),
            FabricError::NoWorkers => write!(f, "fabric needs at least one worker"),
        }
    }
}

impl std::error::Error for FabricError {}

impl FabricError {
    fn io(context: &str, error: &std::io::Error) -> FabricError {
        FabricError::Io {
            context: context.to_string(),
            error: error.to_string(),
        }
    }

    /// A short machine-readable tag for JSON error surfaces.
    pub fn kind(&self) -> &'static str {
        match self {
            FabricError::Io { .. } => "io",
            FabricError::Journal(err) => err.kind(),
            FabricError::WorkersExhausted { .. } => "workers_exhausted",
            FabricError::MissingUnits { .. } => "missing_units",
            FabricError::NoWorkers => "no_workers",
        }
    }
}

/// Per-slot telemetry from a completed fabric run: how many processes the
/// slot spawned, the units it completed, and its abnormal exits. Unit
/// counts are exact — they come from the coordinator's confirmed lease
/// completions, not worker self-reports — but work a dead attempt did on a
/// reclaimed lease is credited to whichever slot re-executes it.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WorkerCensus {
    /// Worker slot.
    pub worker: u64,
    /// Processes spawned for the slot (1 + respawns); 0 for an empty sweep.
    pub spawns: u64,
    /// Units the slot completed via confirmed leases, across all attempts.
    pub units: u64,
    /// Exit-cause labels of the slot's abnormal deaths, in order.
    pub exits: Vec<String>,
}

/// What a completed fabric sweep reports alongside its merged values.
#[derive(Debug)]
pub struct FabricReport {
    /// The merged per-unit values, in strict unit order — byte-identical to
    /// what the serial run would have produced.
    pub values: Vec<Value>,
    /// Every abnormal worker death, in detection order.
    pub exits: Vec<WorkerExit>,
    /// Total processes spawned (initial pool + respawns).
    pub spawns: u64,
    /// How many of those were respawns of dead slots.
    pub respawns: u64,
    /// Leases reclaimed from dead workers.
    pub reclaimed: u64,
    /// Whether any slot retired early (respawn budget exhausted) and the
    /// sweep finished on fewer workers.
    pub degraded: bool,
    /// The per-worker telemetry census, one entry per slot.
    pub workers: Vec<WorkerCensus>,
}

impl FabricReport {
    /// One-line summary for stderr.
    pub fn summary(&self, workers: u64) -> String {
        format!(
            "fabric: {} units merged from {workers} worker slot(s); {} spawn(s) \
             ({} respawn(s)), {} death(s), {} lease(s) reclaimed{}",
            self.values.len(),
            self.spawns,
            self.respawns,
            self.exits.len(),
            self.reclaimed,
            if self.degraded {
                "; DEGRADED (a slot exhausted its respawn budget)"
            } else {
                ""
            }
        )
    }
}

/// How to launch one worker: the program plus every argument *except* the
/// trailing `--fabric-worker N --fabric-attempt K` the coordinator appends.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Executable path (usually `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments reconstructing the experiment config plus `--fabric-dir`.
    pub args: Vec<String>,
}

/// Merge the per-worker journals under `dir` into the flat unit-ordered
/// value list. Duplicate records for a unit (possible after lease reclaims)
/// resolve deterministically: worker journals are scanned in ascending slot
/// order and the first record wins (the values are identical anyway — units
/// are pure functions of the seed).
///
/// # Errors
///
/// [`FabricError::Journal`] if a journal is unreadable, locked, or
/// scope-mismatched; [`FabricError::MissingUnits`] if the union of journals
/// does not cover `0..total`.
pub fn merge_journals(
    dir: &Path,
    workers: u64,
    scope: &str,
    total: u64,
) -> Result<Vec<Value>, FabricError> {
    let mut values: Vec<Option<Value>> =
        vec![None; usize::try_from(total).expect("unit count fits in memory")];
    for slot in 0..workers {
        let path = journal_path(dir, slot);
        if !path.exists() {
            continue;
        }
        let journal = Checkpoint::open(&path).map_err(FabricError::Journal)?;
        journal
            .check_scope(&[scope.to_string()])
            .map_err(FabricError::Journal)?;
        for (unit, value) in values.iter_mut().enumerate() {
            if value.is_none() {
                *value = journal.lookup(scope, unit as u64);
            }
        }
    }
    let missing = values.iter().filter(|v| v.is_none()).count() as u64;
    if missing > 0 {
        let first = values.iter().position(Option::is_none).unwrap_or(0) as u64;
        return Err(FabricError::MissingUnits { missing, first });
    }
    Ok(values.into_iter().flatten().collect())
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

enum ReaderEvent {
    Line(String),
    Eof,
}

struct Slot {
    attempt: u32,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    last_heard: Instant,
    backoff: Backoff,
    respawn_at: Option<Instant>,
    retired: bool,
    /// Units completed via confirmed leases, across all attempts.
    units: u64,
    /// Units completed by the *current* attempt (resets on death).
    attempt_done: u64,
    /// Cumulative units the current attempt last reported via heartbeat;
    /// `hb_units - attempt_done` is its progress on the outstanding lease.
    hb_units: u64,
}

struct Coordinator<'a> {
    cmd: &'a WorkerCommand,
    cfg: &'a FabricConfig,
    slots: Vec<Slot>,
    ledger: LeaseLedger,
    tx: mpsc::Sender<(usize, u32, ReaderEvent)>,
    trace: Trace,
    exits: Vec<WorkerExit>,
    spawns: u64,
    respawns: u64,
    reclaimed: u64,
    degraded: bool,
    meter: ProgressMeter,
}

impl Coordinator<'_> {
    fn note(&self, message: &str) {
        local_obs::progress(!self.cfg.verbose, &format!("fabric: {message}"));
    }

    /// Emit the rate-limited live progress line: completed units from the
    /// ledger plus heartbeat-reported progress on outstanding leases, the
    /// live worker count, and the worst per-worker heartbeat lag.
    fn tick_progress(&mut self) {
        let now = Instant::now();
        let live = self.slots.iter().filter(|s| s.child.is_some()).count();
        let lag = self
            .slots
            .iter()
            .filter(|s| s.child.is_some())
            .map(|s| now.duration_since(s.last_heard).as_secs_f64())
            .fold(0.0_f64, f64::max);
        let inflight: u64 = self
            .slots
            .iter()
            .filter(|s| s.child.is_some())
            .map(|s| s.hb_units.saturating_sub(s.attempt_done))
            .sum();
        let extra = format!("[{live} worker(s), max lag {lag:.1}s]");
        self.meter.update(self.ledger.done() + inflight, &extra);
    }

    fn spawn(&mut self, slot: usize) -> std::io::Result<()> {
        let attempt = self.slots[slot].attempt;
        let mut child = Command::new(&self.cmd.program)
            .args(&self.cmd.args)
            .arg("--fabric-worker")
            .arg(slot.to_string())
            .arg("--fabric-attempt")
            .arg(attempt.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        self.slots[slot].stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("worker stdout is piped");
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => {
                        if tx.send((slot, attempt, ReaderEvent::Line(l))).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send((slot, attempt, ReaderEvent::Eof));
        });
        self.slots[slot].child = Some(child);
        self.slots[slot].last_heard = Instant::now();
        self.spawns += 1;
        self.trace.emit(EventData::WorkerSpawn {
            worker: slot as u64,
            attempt,
        });
        Ok(())
    }

    /// Offer the slot a lease if it is idle and work is pending. Write
    /// failures are left for the reader thread's EOF to clean up (the lease
    /// stays outstanding and is reclaimed by the death handler).
    fn try_grant(&mut self, slot: usize) {
        if self.slots[slot].retired || self.slots[slot].child.is_none() {
            return;
        }
        let Some(lease) = self.ledger.grant(slot) else {
            return;
        };
        self.trace.emit(EventData::LeaseGrant {
            worker: slot as u64,
            start: lease.start,
            len: lease.len,
        });
        let mut line = serde_json::to_string(&CoordMsg::Lease {
            start: lease.start,
            len: lease.len,
        })
        .expect("protocol messages serialize infallibly");
        line.push('\n');
        if let Some(stdin) = self.slots[slot].stdin.as_mut() {
            if stdin.write_all(line.as_bytes()).is_err() {
                self.note(&format!(
                    "worker {slot} rejected a lease write; awaiting reap"
                ));
            }
        }
    }

    fn handle_line(&mut self, slot: usize, line: &str) {
        self.slots[slot].last_heard = Instant::now();
        let Ok(value) = serde_json::from_str::<Value>(line) else {
            // Stray prints on a worker's stdout must not kill the sweep.
            self.note(&format!("ignoring unparseable line from worker {slot}"));
            return;
        };
        let Ok(msg) = WorkerMsg::from_value(&value) else {
            self.note(&format!("ignoring unknown message from worker {slot}"));
            return;
        };
        match msg {
            WorkerMsg::Hello { .. } => self.try_grant(slot),
            WorkerMsg::Heartbeat { units, .. } => {
                self.slots[slot].hb_units = units;
                self.try_grant(slot);
            }
            WorkerMsg::Done { start, len, .. } => {
                if self.ledger.complete(slot, start, len) {
                    self.slots[slot].units += len;
                    self.slots[slot].attempt_done += len;
                    self.trace.emit(EventData::LeaseDone {
                        worker: slot as u64,
                        start,
                        len,
                    });
                }
                self.try_grant(slot);
            }
            WorkerMsg::Bye { .. } => {}
        }
    }

    /// A worker attempt is gone: reap it, reclaim its lease, and schedule a
    /// respawn (or retire the slot when the budget is spent).
    fn handle_death(&mut self, slot: usize, cause: ExitCause) {
        let attempt = self.slots[slot].attempt;
        if let Some(mut child) = self.slots[slot].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.slots[slot].stdin = None;
        self.slots[slot].attempt_done = 0;
        self.slots[slot].hb_units = 0;
        let lost = self.ledger.reclaim(slot);
        if let Some(lease) = &lost {
            self.reclaimed += 1;
            self.trace.emit(EventData::LeaseReclaim {
                worker: slot as u64,
                start: lease.start,
                len: lease.len,
            });
        }
        self.trace.emit(EventData::WorkerDown {
            worker: slot as u64,
            attempt,
            cause: cause.label(),
            lease_lost: lost.is_some(),
        });
        self.exits.push(WorkerExit {
            worker: slot as u64,
            attempt,
            cause: cause.clone(),
            lease_lost: lost.is_some(),
        });
        self.note(&format!(
            "worker {slot} attempt {attempt} down ({}){}",
            cause.label(),
            if lost.is_some() {
                ", lease reclaimed"
            } else {
                ""
            }
        ));
        if self.ledger.is_done() {
            self.slots[slot].retired = true;
            return;
        }
        match self.slots[slot].backoff.next() {
            Some(delay_ms) => {
                self.slots[slot].respawn_at =
                    Some(Instant::now() + Duration::from_millis(delay_ms));
            }
            None => {
                self.slots[slot].retired = true;
                self.degraded = true;
                self.note(&format!(
                    "worker {slot} retired (respawn budget exhausted); degrading to fewer workers"
                ));
            }
        }
    }

    fn run(&mut self, rx: &mpsc::Receiver<(usize, u32, ReaderEvent)>) -> Result<(), FabricError> {
        let deadline = Duration::from_millis(self.cfg.deadline_ms);
        let tick = Duration::from_millis(self.cfg.heartbeat_ms.clamp(10, 200));
        while !self.ledger.is_done() {
            if self.slots.iter().all(|s| s.retired) {
                return Err(FabricError::WorkersExhausted {
                    remaining_units: self.ledger.remaining(),
                    exits: self.exits.clone(),
                });
            }
            match rx.recv_timeout(tick) {
                Ok((slot, attempt, event)) => {
                    // A stale reader (from an attempt already reaped) may
                    // still deliver; only the current attempt counts.
                    if attempt != self.slots[slot].attempt {
                        continue;
                    }
                    match event {
                        ReaderEvent::Line(line) => self.handle_line(slot, &line),
                        ReaderEvent::Eof => {
                            if self.slots[slot].child.is_none() {
                                continue; // already handled (deadline kill)
                            }
                            let cause = match self.slots[slot]
                                .child
                                .as_mut()
                                .expect("checked above")
                                .wait()
                            {
                                Ok(status) => match status.code() {
                                    Some(code) => ExitCause::Exited(code),
                                    None => ExitCause::Signaled,
                                },
                                Err(_) => ExitCause::Signaled,
                            };
                            self.handle_death(slot, cause);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("coordinator holds a sender")
                }
            }
            let now = Instant::now();
            // Heartbeat deadlines: a silent worker is dead even if its
            // process is technically alive (stalled, wedged, swapping).
            for slot in 0..self.slots.len() {
                if self.slots[slot].child.is_some()
                    && now.duration_since(self.slots[slot].last_heard) > deadline
                {
                    self.handle_death(slot, ExitCause::HeartbeatLost);
                }
            }
            // Respawns that have served their backoff delay.
            for slot in 0..self.slots.len() {
                let due = !self.slots[slot].retired
                    && self.slots[slot].child.is_none()
                    && self.slots[slot].respawn_at.is_some_and(|at| now >= at);
                if due {
                    self.slots[slot].respawn_at = None;
                    self.slots[slot].attempt += 1;
                    self.respawns += 1;
                    let attempt = self.slots[slot].attempt;
                    self.note(&format!("respawning worker {slot} (attempt {attempt})"));
                    if let Err(err) = self.spawn(slot) {
                        self.note(&format!("respawn of worker {slot} failed: {err}"));
                        self.handle_death(slot, ExitCause::Exited(-1));
                    }
                }
            }
            self.tick_progress();
        }
        self.meter.finish(self.ledger.done(), "");
        Ok(())
    }

    fn shutdown(&mut self) {
        let mut line = serde_json::to_string(&CoordMsg::Shutdown)
            .expect("protocol messages serialize infallibly");
        line.push('\n');
        for slot in &mut self.slots {
            if let Some(stdin) = slot.stdin.as_mut() {
                let _ = stdin.write_all(line.as_bytes());
            }
            slot.stdin = None; // close the pipe: EOF doubles as shutdown
        }
        let grace = Instant::now() + Duration::from_millis(self.cfg.shutdown_grace_ms);
        loop {
            let mut alive = false;
            for slot in &mut self.slots {
                if let Some(child) = slot.child.as_mut() {
                    match child.try_wait() {
                        Ok(Some(_)) => slot.child = None,
                        Ok(None) => alive = true,
                        Err(_) => slot.child = None,
                    }
                }
            }
            if !alive {
                break;
            }
            if Instant::now() > grace {
                for slot in &mut self.slots {
                    if let Some(mut child) = slot.child.take() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Run a fabric sweep: spawn the worker pool, drive the lease protocol until
/// every unit is journaled, shut the pool down, and merge the journals.
///
/// `dir` holds one journal per worker slot; pre-existing journals (from a
/// killed coordinator) are validated against `scope` and their records
/// reused — kill-and-resume extends across the whole fabric. Lifecycle
/// events (spawns, deaths, lease grants/reclaims) are emitted to `sink`
/// when given.
///
/// # Errors
///
/// See [`FabricError`]; the fabric never panics on worker failure.
pub fn run_fabric(
    total: u64,
    cmd: &WorkerCommand,
    dir: &Path,
    scope: &str,
    cfg: &FabricConfig,
    sink: Option<&mut dyn TraceSink>,
) -> Result<FabricReport, FabricError> {
    if cfg.workers == 0 {
        return Err(FabricError::NoWorkers);
    }
    std::fs::create_dir_all(dir).map_err(|e| FabricError::io("creating fabric dir", &e))?;
    // Validate any pre-existing journals before spawning: a scope mismatch
    // (config or seed drift) must fail loudly up front, not per-worker.
    for slot in 0..cfg.workers {
        let path = journal_path(dir, slot);
        if path.exists() {
            let journal = Checkpoint::open(&path).map_err(FabricError::Journal)?;
            journal
                .check_scope(&[scope.to_string()])
                .map_err(FabricError::Journal)?;
            // Drop immediately: the worker owns this journal (and its lock)
            // from here on.
        }
    }

    let (tx, rx) = mpsc::channel();
    let mut coordinator = Coordinator {
        cmd,
        cfg,
        slots: (0..cfg.workers as usize)
            .map(|slot| Slot {
                attempt: 0,
                child: None,
                stdin: None,
                last_heard: Instant::now(),
                backoff: cfg
                    .respawn
                    .with_jitter_seed(cfg.respawn.jitter_seed ^ slot as u64)
                    .delays(),
                respawn_at: None,
                retired: false,
                units: 0,
                attempt_done: 0,
                hb_units: 0,
            })
            .collect(),
        ledger: LeaseLedger::new(total, cfg.lease_len_for(total), cfg.workers as usize),
        tx,
        trace: Trace::new(0),
        exits: Vec::new(),
        spawns: 0,
        respawns: 0,
        reclaimed: 0,
        degraded: false,
        meter: ProgressMeter::new(!cfg.verbose, "fabric", total),
    };

    let result = if total == 0 {
        Ok(())
    } else {
        let mut spawn_error = None;
        for slot in 0..cfg.workers as usize {
            if let Err(err) = coordinator.spawn(slot) {
                spawn_error = Some(FabricError::io("spawning initial worker pool", &err));
                break;
            }
        }
        match spawn_error {
            Some(err) => Err(err),
            None => coordinator.run(&rx),
        }
    };
    coordinator.shutdown();
    if let Some(sink) = sink {
        coordinator.trace.drain_into(sink);
        sink.flush();
    }
    result?;

    let values = merge_journals(dir, cfg.workers, scope, total)?;
    let workers = coordinator
        .slots
        .iter()
        .enumerate()
        .map(|(slot, s)| WorkerCensus {
            worker: slot as u64,
            spawns: if total == 0 {
                0
            } else {
                u64::from(s.attempt) + 1
            },
            units: s.units,
            exits: coordinator
                .exits
                .iter()
                .filter(|e| e.worker == slot as u64)
                .map(|e| e.cause.label())
                .collect(),
        })
        .collect();
    Ok(FabricReport {
        values,
        exits: coordinator.exits,
        spawns: coordinator.spawns,
        respawns: coordinator.respawns,
        reclaimed: coordinator.reclaimed,
        degraded: coordinator.degraded,
        workers,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Which worker process this is: its journal directory, slot, and spawn
/// attempt (all passed by the coordinator on the command line).
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// The fabric journal directory (`--fabric-dir`).
    pub dir: PathBuf,
    /// This worker's slot (`--fabric-worker`).
    pub worker: u64,
    /// Spawn attempt (`--fabric-attempt`, 0 = first launch).
    pub attempt: u32,
}

fn send_msg(msg: &WorkerMsg) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg).expect("protocol messages serialize infallibly");
    line.push('\n');
    // One write_all call per line: Stdout locks internally per call, so the
    // heartbeat thread and the main loop never interleave partial lines.
    let mut out = std::io::stdout();
    out.write_all(line.as_bytes())?;
    out.flush()
}

/// Fault-injection hook for the chaos tests: `LOCAL_FABRIC_CHAOS` names
/// per-slot failures, e.g. `0:abort@3,1:stall@5` — slot 0 SIGKILL-aborts
/// after journaling 3 units, slot 1 stops heartbeating and hangs after 5.
/// Only the first attempt of a slot misbehaves, so respawns recover.
struct Chaos {
    after_units: u64,
    mode: ChaosMode,
}

enum ChaosMode {
    Abort,
    Stall,
}

impl Chaos {
    fn from_env(worker: u64, attempt: u32) -> Option<Chaos> {
        if attempt != 0 {
            return None;
        }
        let spec = std::env::var("LOCAL_FABRIC_CHAOS").ok()?;
        for part in spec.split(',') {
            let (slot, rest) = part.split_once(':')?;
            if slot.trim().parse::<u64>().ok()? != worker {
                continue;
            }
            let (mode, count) = rest.split_once('@')?;
            let after_units = count.trim().parse().ok()?;
            let mode = match mode.trim() {
                "abort" => ChaosMode::Abort,
                "stall" => ChaosMode::Stall,
                _ => return None,
            };
            return Some(Chaos { after_units, mode });
        }
        None
    }

    /// Called after each journaled unit; may never return.
    fn tick(&self, executed: u64, heartbeats: &AtomicBool) {
        if executed < self.after_units {
            return;
        }
        match self.mode {
            // SIGKILL semantics: no unwinding, no cleanup, journal lock
            // released only by process death.
            ChaosMode::Abort => std::process::abort(),
            ChaosMode::Stall => {
                heartbeats.store(false, Ordering::Relaxed);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
    }
}

/// Serve one worker process: open (and lock) the slot's journal, start the
/// heartbeat thread, and execute leases from stdin until shutdown or EOF,
/// journaling every unit before acknowledging. `exec` maps a global unit
/// index to its encoded value (see [`run_unit_isolated`]).
///
/// Units already present in the journal (from a previous attempt of this
/// slot) are skipped, not recomputed — kill-and-resume holds per worker.
///
/// # Errors
///
/// [`FabricError::Journal`] if the journal cannot be opened/locked or
/// carries a different sweep's scope; [`FabricError::Io`] on protocol or
/// journal-append failures.
pub fn worker_serve<F>(env: &WorkerEnv, scope: &str, exec: F) -> Result<(), FabricError>
where
    F: Fn(u64) -> Value,
{
    let cfg = FabricConfig::from_env(1);
    let journal = Checkpoint::open(journal_path(&env.dir, env.worker))
        .map_err(FabricError::Journal)?
        .with_fsync_every(cfg.fsync_every);
    journal
        .check_scope(&[scope.to_string()])
        .map_err(FabricError::Journal)?;
    let chaos = Chaos::from_env(env.worker, env.attempt);

    let heartbeats = Arc::new(AtomicBool::new(true));
    // The heartbeat thread snapshots this counter so every liveness signal
    // doubles as a progress report — the coordinator's live telemetry.
    let units_done = Arc::new(AtomicU64::new(0));
    let hb_flag = Arc::clone(&heartbeats);
    let hb_units = Arc::clone(&units_done);
    let hb_worker = env.worker;
    let hb_cadence = Duration::from_millis(cfg.heartbeat_ms);
    let hb_thread = std::thread::spawn(move || {
        while hb_flag.load(Ordering::Relaxed) {
            let beat = WorkerMsg::Heartbeat {
                worker: hb_worker,
                units: hb_units.load(Ordering::Relaxed),
            };
            if send_msg(&beat).is_err() {
                return; // coordinator is gone; the main loop will see EOF
            }
            std::thread::sleep(hb_cadence);
        }
    });

    let serve = || -> Result<(), FabricError> {
        send_msg(&WorkerMsg::Hello {
            worker: env.worker,
            attempt: env.attempt,
        })
        .map_err(|e| FabricError::io("sending hello", &e))?;
        for line in BufReader::new(std::io::stdin()).lines() {
            let line = line.map_err(|e| FabricError::io("reading coordinator message", &e))?;
            if line.trim().is_empty() {
                continue;
            }
            let msg = serde_json::from_str::<Value>(&line)
                .ok()
                .and_then(|v| CoordMsg::from_value(&v).ok());
            match msg {
                Some(CoordMsg::Lease { start, len }) => {
                    for unit in start..start.saturating_add(len) {
                        if journal.lookup(scope, unit).is_none() {
                            let value = exec(unit);
                            journal
                                .record(scope, unit, value)
                                .map_err(|e| FabricError::io("journaling unit", &e))?;
                            let executed = units_done.fetch_add(1, Ordering::Relaxed) + 1;
                            if let Some(chaos) = &chaos {
                                chaos.tick(executed, &heartbeats);
                            }
                        }
                    }
                    send_msg(&WorkerMsg::Done {
                        worker: env.worker,
                        start,
                        len,
                    })
                    .map_err(|e| FabricError::io("sending done", &e))?;
                }
                Some(CoordMsg::Shutdown) => {
                    let _ = send_msg(&WorkerMsg::Bye { worker: env.worker });
                    break;
                }
                None => {
                    return Err(FabricError::Io {
                        context: "parsing coordinator message".to_string(),
                        error: format!("unparseable line: {line:?}"),
                    });
                }
            }
        }
        Ok(())
    };
    let result = serve();
    heartbeats.store(false, Ordering::Relaxed);
    let _ = hb_thread.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lcl-fabric-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("mkdir");
        p
    }

    fn points(trials: &[u64]) -> Vec<SweepPoint> {
        trials
            .iter()
            .enumerate()
            .map(|(i, &t)| SweepPoint {
                scope: format!("p{i}"),
                trials: t,
            })
            .collect()
    }

    #[test]
    fn unit_map_locates_and_groups() {
        let pts = points(&[3, 0, 2]);
        let map = UnitMap::new(&pts);
        assert_eq!(map.total(), 5);
        assert_eq!(map.locate(0), (0, 0));
        assert_eq!(map.locate(2), (0, 2));
        assert_eq!(map.locate(3), (2, 0), "zero-trial point is skipped");
        assert_eq!(map.locate(4), (2, 1));
        let groups = map.group((0..5).map(Value::U64).collect());
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![Value::U64(0), Value::U64(1), Value::U64(2)]);
        assert!(groups[1].is_empty());
        assert_eq!(groups[2], vec![Value::U64(3), Value::U64(4)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_map_rejects_out_of_range() {
        UnitMap::new(&points(&[2])).locate(2);
    }

    #[test]
    fn journal_scope_fingerprints_config() {
        let a = journal_scope(&points(&[3, 2]));
        let b = journal_scope(&points(&[3, 2]));
        assert_eq!(a, b, "deterministic");
        assert!(a.starts_with("fabric/v1/"), "{a}");
        assert!(a.ends_with("/units=5"), "{a}");
        // Different trial counts or scopes change the fingerprint.
        assert_ne!(a, journal_scope(&points(&[2, 3])));
        let mut renamed = points(&[3, 2]);
        renamed[0].scope = "other".into();
        assert_ne!(a, journal_scope(&renamed));
    }

    #[test]
    fn ledger_grants_completes_and_reclaims() {
        let mut ledger = LeaseLedger::new(10, 4, 2);
        assert_eq!(ledger.remaining(), 10);
        let a = ledger.grant(0).expect("lease for slot 0");
        assert_eq!(a, Lease { start: 0, len: 4 });
        assert_eq!(ledger.grant(0), None, "one lease per slot");
        let b = ledger.grant(1).expect("lease for slot 1");
        assert_eq!(b, Lease { start: 4, len: 4 });

        // Slot 0 dies: its lease goes back to the front.
        let lost = ledger.reclaim(0).expect("reclaim");
        assert_eq!(lost, Lease { start: 0, len: 4 });
        assert_eq!(ledger.reclaim(0), None, "double reclaim is a no-op");

        // Slot 1 finishes and picks up the reclaimed lease first.
        assert!(ledger.complete(1, 4, 4));
        assert!(!ledger.complete(1, 4, 4), "duplicate done is ignored");
        assert_eq!(ledger.grant(1), Some(Lease { start: 0, len: 4 }));
        assert!(ledger.complete(1, 0, 4));
        assert_eq!(ledger.grant(1), Some(Lease { start: 8, len: 2 }));
        assert!(!ledger.is_done());
        assert!(ledger.complete(1, 8, 2));
        assert!(ledger.is_done());
        assert_eq!(ledger.remaining(), 0);
    }

    #[test]
    fn ledger_ignores_stale_completion_after_reclaim() {
        let mut ledger = LeaseLedger::new(4, 4, 2);
        ledger.grant(0).expect("lease");
        ledger.reclaim(0).expect("reclaim");
        // The dead slot's Done arrives late (it journaled, then was declared
        // dead): it must not count — the reissued lease will.
        assert!(!ledger.complete(0, 0, 4));
        assert_eq!(ledger.grant(1), Some(Lease { start: 0, len: 4 }));
        assert!(ledger.complete(1, 0, 4));
        assert!(ledger.is_done());
    }

    #[test]
    fn protocol_messages_round_trip() {
        let worker_msgs = vec![
            WorkerMsg::Hello {
                worker: 3,
                attempt: 2,
            },
            WorkerMsg::Heartbeat {
                worker: 0,
                units: 42,
            },
            WorkerMsg::Done {
                worker: 1,
                start: 16,
                len: 8,
            },
            WorkerMsg::Bye { worker: 7 },
        ];
        for msg in worker_msgs {
            let line = serde_json::to_string(&msg).unwrap();
            let v: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(WorkerMsg::from_value(&v).unwrap(), msg, "{line}");
        }
        let coord_msgs = vec![CoordMsg::Lease { start: 5, len: 3 }, CoordMsg::Shutdown];
        for msg in coord_msgs {
            let line = serde_json::to_string(&msg).unwrap();
            let v: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(CoordMsg::from_value(&v).unwrap(), msg, "{line}");
        }
    }

    #[test]
    fn unknown_protocol_messages_are_errors() {
        let v: Value = serde_json::from_str(r#"{"msg": "warp", "worker": 0}"#).unwrap();
        assert!(WorkerMsg::from_value(&v).is_err());
        assert!(CoordMsg::from_value(&v).is_err());
    }

    #[test]
    fn merge_scans_slots_in_order_and_tolerates_duplicates() {
        let dir = temp_dir("merge");
        let scope = "fabric/v1/test/units=6";
        {
            let j0 = Checkpoint::open(journal_path(&dir, 0)).expect("open");
            for unit in [0u64, 1, 2, 4] {
                j0.record(scope, unit, Value::U64(unit * 10)).expect("rec");
            }
            // Worker 1 recomputed units 2 and 4 after a reclaim (identical
            // values, as the determinism contract guarantees) plus its own.
            let j1 = Checkpoint::open(journal_path(&dir, 1)).expect("open");
            for unit in [2u64, 3, 4, 5] {
                j1.record(scope, unit, Value::U64(unit * 10)).expect("rec");
            }
        }
        let merged = merge_journals(&dir, 2, scope, 6).expect("merge");
        assert_eq!(
            merged,
            (0..6).map(|u| Value::U64(u * 10)).collect::<Vec<_>>()
        );
        // A missing journal for a slot that never spawned is fine.
        let merged = merge_journals(&dir, 4, scope, 6).expect("merge with gaps");
        assert_eq!(merged.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_reports_missing_units() {
        let dir = temp_dir("missing");
        let scope = "s";
        {
            let j0 = Checkpoint::open(journal_path(&dir, 0)).expect("open");
            j0.record(scope, 0, Value::U64(1)).expect("rec");
            j0.record(scope, 2, Value::U64(3)).expect("rec");
        }
        match merge_journals(&dir, 1, scope, 4) {
            Err(FabricError::MissingUnits { missing, first }) => {
                assert_eq!(missing, 2);
                assert_eq!(first, 1);
            }
            other => panic!("expected MissingUnits, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_scope_drift() {
        let dir = temp_dir("drift");
        {
            let j0 = Checkpoint::open(journal_path(&dir, 0)).expect("open");
            j0.record("old-scope", 0, Value::U64(1)).expect("rec");
        }
        match merge_journals(&dir, 1, "new-scope", 1) {
            Err(FabricError::Journal(CheckpointError::ScopeMismatch { found, .. })) => {
                assert_eq!(found, "old-scope");
            }
            other => panic!("expected ScopeMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_unit_isolated_encodes_both_outcomes() {
        let ok = run_unit_isolated(|| 42u64);
        assert_eq!(
            decode_unit::<u64>(&ok),
            Some(crate::trials::TrialOutcome::Ok(42))
        );
        let boom = run_unit_isolated::<u64>(|| panic!("kaput"));
        match decode_unit::<u64>(&boom) {
            Some(crate::trials::TrialOutcome::Panicked { message }) => {
                assert!(message.contains("kaput"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn chaos_spec_parses_per_slot() {
        // Not via env (tests run in parallel); exercise the parser shape
        // through from_env only for the attempt gate.
        assert!(Chaos::from_env(0, 1).is_none(), "respawns never misbehave");
    }

    #[test]
    fn config_auto_lease_sizing_is_sane() {
        let cfg = FabricConfig::new(4);
        assert_eq!(cfg.lease_len_for(0), 1);
        assert_eq!(cfg.lease_len_for(15), 1);
        assert_eq!(cfg.lease_len_for(160), 10);
        let fixed = FabricConfig {
            lease_len: Some(7),
            ..FabricConfig::new(4)
        };
        assert_eq!(fixed.lease_len_for(160), 7);
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let cmd = WorkerCommand {
            program: PathBuf::from("/nonexistent"),
            args: vec![],
        };
        let dir = temp_dir("zero");
        let cfg = FabricConfig::new(0);
        match run_fabric(4, &cmd, &dir, "s", &cfg, None) {
            Err(FabricError::NoWorkers) => {}
            other => panic!("expected NoWorkers, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_units_completes_without_spawning() {
        let cmd = WorkerCommand {
            program: PathBuf::from("/nonexistent-program-on-purpose"),
            args: vec![],
        };
        let dir = temp_dir("empty");
        let mut cfg = FabricConfig::new(2);
        cfg.verbose = false;
        let report = run_fabric(0, &cmd, &dir, "s", &cfg, None).expect("empty sweep");
        assert!(report.values.is_empty());
        assert_eq!(report.spawns, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
