//! Aligned text tables for experiment output.

use std::fmt;

/// A simple aligned table: header row plus data rows, rendered with column
/// padding — the format every experiment binary prints and EXPERIMENTS.md
/// records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.push(vec!["64".into(), "7".into()]);
        t.push(vec!["65536".into(), "9".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 65536 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn f3_format() {
        assert_eq!(f3(0.111111), "0.111");
        assert_eq!(f3(2.0), "2.000");
    }
}
