//! Theorems 6 & 8: the automatic speedup of sub-logarithmic deterministic
//! algorithms.
//!
//! The paper's mechanism: any DetLOCAL algorithm `A` for an LCL whose runtime
//! is `f(Δ) + ε·ℓ/log Δ` in the ID length `ℓ` can be run with *short* IDs
//! that are only distinct within distance `k = Θ(f(Δ))` — computed by one
//! pass of Linial's algorithm on the power graph `G^k` in
//! `O(k·(log* n − log* Δ + 1))` rounds — while pretending the graph has
//! `2^(ℓ')` vertices. By the hereditary property the output stays valid, and
//! the total time collapses to `O((1 + f(Δ))(log* n − log* Δ + 1))`.
//!
//! Executable demonstration (experiment E7): the *greedy-by-ID* `(Δ+1)`-
//! coloring algorithm, whose round complexity is the longest strictly-
//! decreasing-ID path — `Θ(n)` under adversarial IDs, but `O(Δ^(2k))` after
//! ID shortening, because short IDs repeat every few hops. The transform
//! turns a `Θ(n)` algorithm into an `O(log* n + poly Δ)` one without looking
//! inside it, which is exactly Theorem 6's black-box claim.

use local_algorithms::color::linial::linial_color_from;
use local_algorithms::color::ColoringOutcome;
use local_algorithms::sync::{run_sync, SyncAlgorithm, SyncCtx, SyncStep};
use local_graphs::{analysis, Graph};
use local_lcl::Labeling;
use local_model::{ExecSpec, GlobalParams, IdAssignment, Mode, NodeInit};
use serde::{Deserialize, Serialize};

/// Short IDs distinct within a prescribed distance, with the LOCAL round
/// cost of computing them.
#[derive(Debug, Clone)]
pub struct ShortIds {
    /// Per-vertex short IDs.
    pub ids: Vec<u64>,
    /// The ID-space size (`β·Δ^(2k)`-ish): short IDs lie in `0..space`.
    pub space: u64,
    /// Distance within which the IDs are guaranteed distinct.
    pub distinct_radius: usize,
    /// LOCAL rounds consumed: `k ×` (Linial rounds on `G^k`).
    pub rounds: u32,
}

/// Compute IDs distinct within distance `k` by running Linial's algorithm on
/// the power graph `G^k`, each `G^k`-round simulated by `k` rounds of `G`
/// (the paper's construction in Theorems 5, 6, 8).
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty.
pub fn shorten_ids(g: &Graph, k: usize, ids: &IdAssignment) -> ShortIds {
    assert!(k >= 1, "distinct radius must be at least 1");
    assert!(g.n() > 0, "cannot shorten IDs on the empty graph");
    let gk = analysis::power_graph(g, k);
    let assigned = ids.assign(g);
    let initial_palette = assigned.iter().copied().max().expect("nonempty") + 1;
    let out = linial_color_from(&gk, assigned, initial_palette, gk.max_degree());
    ShortIds {
        ids: out.labels.as_slice().iter().map(|&c| c as u64).collect(),
        space: out.palette as u64,
        distinct_radius: k,
        rounds: out.rounds * k as u32,
    }
}

/// Verify that `ids` are pairwise distinct within distance `radius`
/// (centralized check used by tests and experiments).
pub fn ids_locally_distinct(g: &Graph, ids: &[u64], radius: usize) -> bool {
    for v in g.vertices() {
        let dist = analysis::bfs_distances(g, v);
        for u in g.vertices() {
            if u != v && dist[u] <= radius && ids[u] == ids[v] {
                return false;
            }
        }
    }
    true
}

// ------------------------------------------------- the demo algorithm

/// Public state of greedy-by-ID coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyState {
    id: u64,
    color: Option<usize>,
}

/// Greedy `(Δ+1)`-coloring in ID order: a vertex colors itself once every
/// neighbor with a *smaller* ID has (ties never block — IDs are distinct
/// among neighbors). Runtime = longest strictly-increasing-ID path ending at
/// each vertex; `Θ(n)` for adversarially ordered IDs on a path.
#[derive(Debug, Clone)]
pub struct GreedyByIds {
    ids: Vec<u64>,
    palette: usize,
}

impl GreedyByIds {
    /// Build with explicit per-vertex IDs (distinct among neighbors) and a
    /// palette of size `palette > Δ`.
    pub fn new(ids: Vec<u64>, palette: usize) -> Self {
        GreedyByIds { ids, palette }
    }
}

impl SyncAlgorithm for GreedyByIds {
    type State = GreedyState;
    type Output = usize;

    fn init(&self, init: &NodeInit<'_>) -> GreedyState {
        GreedyState {
            id: self.ids[init.node],
            color: None,
        }
    }

    fn update(
        &self,
        _round: u32,
        _ctx: &mut SyncCtx<'_>,
        state: &GreedyState,
        neighbors: &[GreedyState],
    ) -> SyncStep<GreedyState, usize> {
        let blocked = neighbors
            .iter()
            .any(|nb| nb.id < state.id && nb.color.is_none());
        if blocked {
            return SyncStep::Continue(state.clone());
        }
        let used: Vec<usize> = neighbors.iter().filter_map(|nb| nb.color).collect();
        let c = (0..self.palette)
            .find(|c| !used.contains(c))
            .expect("palette > degree guarantees a free color");
        SyncStep::Decide(
            GreedyState {
                id: state.id,
                color: Some(c),
            },
            c,
        )
    }
}

/// Run greedy-by-ID coloring with the given IDs.
///
/// # Panics
///
/// Panics if `palette <= Δ(G)` or if adjacent vertices share an ID
/// (deadlock, surfacing as a round-limit panic).
pub fn greedy_color_by_ids(g: &Graph, ids: Vec<u64>, palette: usize) -> ColoringOutcome {
    assert!(
        palette > g.max_degree(),
        "palette {palette} must exceed Δ = {}",
        g.max_degree()
    );
    let algo = GreedyByIds::new(ids, palette);
    let horizon = GlobalParams::from_graph(g)
        .round_horizon(8)
        .expect("materialized graphs fit the u32 round counter");
    let out = run_sync(g, Mode::deterministic(), &algo, &ExecSpec::rounds(horizon))
        .strict()
        .expect("greedy-by-id terminates within n rounds when IDs are locally distinct");
    ColoringOutcome {
        labels: Labeling::new(out.outputs),
        palette,
        rounds: out.rounds,
    }
}

/// The before/after record of one Theorem-6 transformation (experiment E7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Vertices.
    pub n: usize,
    /// Maximum degree.
    pub delta: usize,
    /// Rounds of the original algorithm under adversarial full-length IDs.
    pub slow_rounds: u32,
    /// Rounds spent shortening IDs (Linial on `G^k`, simulated).
    pub preprocessing_rounds: u32,
    /// Rounds of the same algorithm under the short IDs.
    pub fast_rounds: u32,
    /// The short-ID space size.
    pub short_id_space: u64,
}

impl SpeedupReport {
    /// Total rounds of the transformed algorithm `A'`.
    pub fn transformed_total(&self) -> u32 {
        self.preprocessing_rounds + self.fast_rounds
    }
}

/// Run the full Theorem-6 demonstration on `g`: greedy `(Δ+1)`-coloring by
/// (a) adversarial full-length IDs and (b) distance-2-distinct short IDs,
/// verifying both colorings.
///
/// Distance 2 suffices for greedy-by-ID: its progress argument only compares
/// IDs across single edges, and the validity of the output only needs
/// neighbors' IDs distinct; `k = 2` keeps strictly-increasing-ID paths
/// shorter than the ID-space size.
///
/// # Panics
///
/// Panics if either run produces an improper coloring (internal bug).
pub fn theorem6_demo(g: &Graph, adversarial_ids: Vec<u64>) -> SpeedupReport {
    use local_lcl::problems::VertexColoring;
    use local_lcl::LclProblem;

    let palette = g.max_degree() + 1;
    let slow = greedy_color_by_ids(g, adversarial_ids, palette);
    VertexColoring::new(palette)
        .validate(g, &slow.labels)
        .expect("slow run must color properly");

    let short = shorten_ids(g, 2, &IdAssignment::Sequential);
    debug_assert!(ids_locally_distinct(g, &short.ids, 2));
    let fast = greedy_color_by_ids(g, short.ids.clone(), palette);
    VertexColoring::new(palette)
        .validate(g, &fast.labels)
        .expect("fast run must color properly");

    SpeedupReport {
        n: g.n(),
        delta: g.max_degree(),
        slow_rounds: slow.rounds,
        preprocessing_rounds: short.rounds,
        fast_rounds: fast.rounds,
        short_id_space: short.space,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn short_ids_are_locally_distinct() {
        let g = gen::cycle(64);
        for k in [1usize, 2, 3] {
            let s = shorten_ids(&g, k, &IdAssignment::Sequential);
            assert!(ids_locally_distinct(&g, &s.ids, k), "k = {k}");
            assert!(s.ids.iter().all(|&id| id < s.space));
            assert_eq!(s.distinct_radius, k);
        }
    }

    #[test]
    fn short_id_space_is_bounded_by_delta_and_k_only() {
        // G² of a cycle has Δ' = 4; the short-ID space is at most Linial's
        // β·Δ'² fixpoint regardless of n (it can be *smaller* for tiny n,
        // where the original ID space already sits below the fixpoint).
        let a = shorten_ids(&gen::cycle(64), 2, &IdAssignment::Sequential).space;
        let b = shorten_ids(&gen::cycle(2048), 2, &IdAssignment::Sequential).space;
        let c = shorten_ids(&gen::cycle(65536), 2, &IdAssignment::Sequential).space;
        let bound = 40 * 4 * 4;
        assert!(a <= bound && b <= bound && c <= bound);
        assert_eq!(b, c, "above the fixpoint the space is n-independent");
    }

    #[test]
    fn greedy_by_increasing_ids_is_slow_on_paths() {
        // IDs increasing along the path: vertex i waits for i−1 ⇒ Θ(n).
        let n = 128;
        let g = gen::path(n);
        let out = greedy_color_by_ids(&g, (0..n as u64).collect(), 3);
        assert!(out.rounds as usize >= n - 1, "got {} rounds", out.rounds);
    }

    #[test]
    fn greedy_with_short_ids_is_fast_on_paths() {
        let n = 1024;
        let g = gen::path(n);
        let short = shorten_ids(&g, 2, &IdAssignment::Sequential);
        let out = greedy_color_by_ids(&g, short.ids, 3);
        assert!(
            u64::from(out.rounds) <= short.space + 1,
            "rounds {} must be bounded by the ID space {}",
            out.rounds,
            short.space
        );
    }

    #[test]
    fn demo_shows_exponential_gap() {
        let n = 512;
        let g = gen::path(n);
        let report = theorem6_demo(&g, (0..n as u64).collect());
        assert!(report.slow_rounds as usize >= n - 1);
        assert!(
            report.transformed_total() < report.slow_rounds / 4,
            "transform must win big: {} vs {}",
            report.transformed_total(),
            report.slow_rounds
        );
    }

    #[test]
    fn demo_on_trees() {
        let mut rng = StdRng::seed_from_u64(90);
        let g = gen::random_tree_max_degree(300, 4, &mut rng);
        // Adversarial IDs: BFS order (long increasing chains).
        let order = {
            let dist = analysis::bfs_distances(&g, 0);
            let mut idx: Vec<usize> = (0..g.n()).collect();
            idx.sort_by_key(|&v| dist[v]);
            let mut ids = vec![0u64; g.n()];
            for (rank, v) in idx.into_iter().enumerate() {
                ids[v] = rank as u64;
            }
            ids
        };
        let report = theorem6_demo(&g, order);
        // Random attachment trees are only O(log n) deep, so the "slow" run
        // is not that slow; the meaningful invariant here is that the
        // algorithm itself never got slower under short IDs (the dramatic
        // gap is the path workload, tested above).
        assert!(report.fast_rounds <= report.slow_rounds + 2);
    }

    #[test]
    fn preprocessing_rounds_are_log_star() {
        let small = shorten_ids(&gen::cycle(64), 2, &IdAssignment::Sequential).rounds;
        let large = shorten_ids(&gen::cycle(8192), 2, &IdAssignment::Sequential).rounds;
        assert!(large <= small + 4, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "distinct radius")]
    fn rejects_k_zero() {
        let g = gen::path(3);
        let _ = shorten_ids(&g, 0, &IdAssignment::Sequential);
    }
}
