//! Reusable retry/backoff policy: jittered exponential delays with a cap
//! and a hard attempt budget.
//!
//! The sweep fabric's coordinator uses this to pace worker respawns, but the
//! policy is deliberately generic: anything that needs "try again, later,
//! but not forever" builds a [`RetryPolicy`] and either walks the
//! [`Backoff`] iterator itself (non-blocking schedulers) or calls
//! [`with_backoff`] with a [`Clock`] (blocking callers).
//!
//! Determinism: the jitter stream is derived from `jitter_seed` via the
//! engine's own stream-splitting ([`local_model::derived_u64`]), so a policy
//! with a fixed seed produces the same delay sequence on every run — tests
//! inject a [`RecordingClock`] and assert the exact schedule.

use local_model::derived_u64;

/// A jittered exponential backoff policy.
///
/// Attempt `k` (zero-based) draws its delay uniformly from
/// `[d/2, d]` where `d = min(cap_ms, base_ms << k)` — "equal jitter", so a
/// delay is never shorter than half its nominal value and herds of retriers
/// still decorrelate. After `budget` attempts the iterator is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Nominal delay of the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling on the nominal delay, in milliseconds.
    pub cap_ms: u64,
    /// Maximum number of retries before giving up.
    pub budget: u32,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A policy with the given shape and a zero jitter seed.
    pub fn new(base_ms: u64, cap_ms: u64, budget: u32) -> RetryPolicy {
        RetryPolicy {
            base_ms,
            cap_ms,
            budget,
            jitter_seed: 0,
        }
    }

    /// The same policy with its jitter stream re-keyed (e.g. per worker
    /// slot, so simultaneous respawns spread out).
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// The nominal (un-jittered) delay of attempt `attempt`, in ms.
    fn nominal_ms(&self, attempt: u32) -> u64 {
        // saturating_mul (not a shift): a shift silently drops high bits
        // instead of saturating, which would *shrink* late delays.
        let doubled = self.base_ms.saturating_mul(1u64 << attempt.min(63));
        doubled.min(self.cap_ms)
    }

    /// The jittered delay of attempt `attempt`, in ms — deterministic in
    /// `(jitter_seed, attempt)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let nominal = self.nominal_ms(attempt);
        let half = nominal / 2;
        let span = nominal - half + 1;
        half + derived_u64(self.jitter_seed, u64::from(attempt)) % span
    }

    /// Iterator over the policy's delay schedule: `budget` jittered delays,
    /// then `None`.
    pub fn delays(&self) -> Backoff {
        Backoff {
            policy: *self,
            attempt: 0,
        }
    }
}

/// The delay schedule of a [`RetryPolicy`]; see [`RetryPolicy::delays`].
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
}

impl Backoff {
    /// Number of retries already scheduled.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Is the budget exhausted?
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.policy.budget
    }
}

impl Iterator for Backoff {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.attempt >= self.policy.budget {
            return None;
        }
        let delay = self.policy.delay_ms(self.attempt);
        self.attempt += 1;
        Some(delay)
    }
}

/// A source of sleep, injectable so backoff schedules are testable without
/// wall-clock time.
pub trait Clock {
    /// Block for `ms` milliseconds.
    fn sleep_ms(&mut self, ms: u64);
}

/// The real clock: [`std::thread::sleep`].
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep_ms(&mut self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// A test clock that records every requested sleep and never blocks.
#[derive(Debug, Default, Clone)]
pub struct RecordingClock {
    /// Every sleep requested so far, in ms, in order.
    pub slept_ms: Vec<u64>,
}

impl Clock for RecordingClock {
    fn sleep_ms(&mut self, ms: u64) {
        self.slept_ms.push(ms);
    }
}

/// Run `op` until it succeeds, sleeping the policy's jittered delay between
/// failures. `op` receives the zero-based attempt number. After the budget
/// is exhausted the last error comes back along with the total number of
/// attempts made (`budget + 1`: the initial try plus every retry).
///
/// # Errors
///
/// The final `op` error, if every attempt failed.
pub fn with_backoff<T, E, C, F>(
    policy: &RetryPolicy,
    clock: &mut C,
    mut op: F,
) -> Result<T, (E, u32)>
where
    C: Clock,
    F: FnMut(u32) -> Result<T, E>,
{
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(err) => {
                if attempt >= policy.budget {
                    return Err((err, attempt + 1));
                }
                clock.sleep_ms(policy.delay_ms(attempt));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let policy = RetryPolicy::new(100, 2_000, 8).with_jitter_seed(42);
        let a: Vec<u64> = policy.delays().collect();
        let b: Vec<u64> = policy.delays().collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 8, "budget bounds the schedule");
        for (attempt, &delay) in a.iter().enumerate() {
            let nominal = (100u64 << attempt).min(2_000);
            assert!(
                delay >= nominal / 2 && delay <= nominal,
                "attempt {attempt}: {delay} outside [{}, {nominal}]",
                nominal / 2
            );
        }
    }

    #[test]
    fn delays_grow_then_saturate_at_cap() {
        // Zero out jitter variance by checking nominal bounds: once
        // base << k passes the cap every delay lands in [cap/2, cap].
        let policy = RetryPolicy::new(50, 400, 10).with_jitter_seed(7);
        let tail: Vec<u64> = policy.delays().skip(3).collect();
        for &delay in &tail {
            assert!((200..=400).contains(&delay), "capped delay, got {delay}");
        }
    }

    #[test]
    fn jitter_seed_changes_the_schedule() {
        let a: Vec<u64> = RetryPolicy::new(100, 10_000, 6)
            .with_jitter_seed(1)
            .delays()
            .collect();
        let b: Vec<u64> = RetryPolicy::new(100, 10_000, 6)
            .with_jitter_seed(2)
            .delays()
            .collect();
        assert_ne!(a, b, "different seeds should decorrelate");
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy::new(u64::MAX / 2, u64::MAX, 200).with_jitter_seed(3);
        // base << k overflows u64 well before k = 199; the nominal delay
        // must saturate at the cap instead of wrapping.
        let last = policy.delay_ms(199);
        assert!(last >= u64::MAX / 2);
    }

    #[test]
    fn zero_budget_schedules_nothing() {
        let policy = RetryPolicy::new(100, 1_000, 0);
        assert_eq!(policy.delays().count(), 0);
        let mut backoff = policy.delays();
        assert!(backoff.exhausted());
        assert_eq!(backoff.next(), None);
    }

    #[test]
    fn with_backoff_retries_until_success() {
        let policy = RetryPolicy::new(100, 1_000, 5).with_jitter_seed(9);
        let mut clock = RecordingClock::default();
        let result: Result<u32, (&str, u32)> = with_backoff(&policy, &mut clock, |attempt| {
            if attempt < 3 {
                Err("not yet")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(3));
        // Exactly the first three delays of the deterministic schedule.
        let expected: Vec<u64> = policy.delays().take(3).collect();
        assert_eq!(clock.slept_ms, expected);
    }

    #[test]
    fn with_backoff_exhausts_budget_and_reports_attempts() {
        let policy = RetryPolicy::new(10, 80, 4).with_jitter_seed(11);
        let mut clock = RecordingClock::default();
        let result: Result<(), (&str, u32)> =
            with_backoff(&policy, &mut clock, |_| Err("still broken"));
        assert_eq!(result, Err(("still broken", 5)), "1 try + 4 retries");
        let expected: Vec<u64> = policy.delays().collect();
        assert_eq!(clock.slept_ms, expected, "slept the whole schedule");
    }

    #[test]
    fn with_backoff_zero_budget_tries_once() {
        let policy = RetryPolicy::new(10, 80, 0);
        let mut clock = RecordingClock::default();
        let result: Result<(), (&str, u32)> = with_backoff(&policy, &mut clock, |_| Err("no"));
        assert_eq!(result, Err(("no", 1)));
        assert!(clock.slept_ms.is_empty(), "no sleeps without retries");
    }
}
