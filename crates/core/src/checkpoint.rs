//! JSON-lines checkpoint store for resumable experiment sweeps.
//!
//! A [`Checkpoint`] is an append-only file of one JSON object per line,
//! `{"scope": ..., "index": ..., "value": ...}`, recording the result of
//! each finished trial. An interrupted sweep rerun with the same seed and
//! `--checkpoint` path reloads the file, skips every trial it already holds,
//! and recomputes only the rest — so the final `--json` report is
//! byte-identical to an uninterrupted run (provided the recorded values
//! round-trip exactly; keep them integer- and string-valued).
//!
//! The store tolerates a torn final line: a process killed mid-append leaves
//! a truncated record, which [`Checkpoint::open`] silently drops (that trial
//! is simply recomputed). Every complete line is flushed before
//! [`Checkpoint::record`] returns, so at most one in-flight record can ever
//! be lost.
//!
//! The `scope` string namespaces trial indices: experiments embed the
//! workload and grid coordinates (and the master seed) so that resuming with
//! different parameters never reuses stale results.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::Value;

/// An append-only JSON-lines store of per-trial results, safe to share
/// across rayon workers.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<(String, u64), Value>,
    writer: BufWriter<File>,
}

impl Checkpoint {
    /// Open (or create) the checkpoint file at `path`, loading every intact
    /// record already present.
    ///
    /// Malformed lines — a torn final line after a kill, or stray garbage —
    /// are skipped, not errors: the corresponding trials are recomputed. A
    /// later record for the same `(scope, index)` supersedes an earlier one.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the file cannot be read or opened for append.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Checkpoint> {
        use std::io::{Read, Seek, SeekFrom};

        let path = path.as_ref().to_path_buf();
        let mut entries = HashMap::new();
        // A killed writer can leave the file without a trailing newline; a
        // fresh append would then glue onto the torn fragment and corrupt
        // the new record too. Detect that and terminate the torn line first.
        let mut needs_newline = false;
        match File::open(&path) {
            Ok(mut file) => {
                if file.metadata()?.len() > 0 {
                    file.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    file.read_exact(&mut last)?;
                    needs_newline = last[0] != b'\n';
                    file.seek(SeekFrom::Start(0))?;
                }
                for line in BufReader::new(file).lines() {
                    let line = line?;
                    if let Some((scope, index, value)) = parse_line(&line) {
                        entries.insert((scope, index), value);
                    }
                }
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if needs_newline {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(Checkpoint {
            path,
            inner: Mutex::new(Inner { entries, writer }),
        })
    }

    /// The path this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded + recorded entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint lock").entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded value for trial `index` of `scope`, if present.
    pub fn lookup(&self, scope: &str, index: u64) -> Option<Value> {
        self.inner
            .lock()
            .expect("checkpoint lock")
            .entries
            .get(&(scope.to_string(), index))
            .cloned()
    }

    /// Append one record and flush it to disk before returning, so a kill
    /// after `record` never loses the trial.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the append or flush fails.
    pub fn record(&self, scope: &str, index: u64, value: Value) -> std::io::Result<()> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("scope".to_string(), Value::String(scope.to_string())),
            ("index".to_string(), Value::U64(index)),
            ("value".to_string(), value.clone()),
        ]))
        .expect("checkpoint records serialize infallibly");
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        inner.entries.insert((scope.to_string(), index), value);
        Ok(())
    }
}

/// Parse one checkpoint line; `None` for anything malformed (torn tail,
/// wrong shape).
fn parse_line(line: &str) -> Option<(String, u64, Value)> {
    if line.trim().is_empty() {
        return None;
    }
    let v: Value = serde_json::from_str(line).ok()?;
    let scope = v.get("scope")?.as_str().ok()?.to_string();
    let index = match v.get("index")? {
        Value::U64(i) => *i,
        _ => return None,
    };
    let value = v.get("value")?.clone();
    Some((scope, index, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lcl-checkpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn record_then_reopen_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            assert!(ckpt.is_empty());
            ckpt.record("e13/drop=0.1", 0, Value::U64(7)).expect("rec");
            ckpt.record("e13/drop=0.1", 2, Value::Bool(true))
                .expect("rec");
            ckpt.record("e13/drop=0.2", 0, Value::String("x".into()))
                .expect("rec");
            assert_eq!(ckpt.len(), 3);
            assert_eq!(ckpt.lookup("e13/drop=0.1", 0), Some(Value::U64(7)));
        }
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.len(), 3);
        assert_eq!(again.lookup("e13/drop=0.1", 0), Some(Value::U64(7)));
        assert_eq!(again.lookup("e13/drop=0.1", 2), Some(Value::Bool(true)));
        assert_eq!(
            again.lookup("e13/drop=0.2", 0),
            Some(Value::String("x".into()))
        );
        assert_eq!(again.lookup("e13/drop=0.1", 1), None);
        assert_eq!(again.lookup("other", 0), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            ckpt.record("s", 0, Value::U64(1)).expect("rec");
            ckpt.record("s", 1, Value::U64(2)).expect("rec");
        }
        // Simulate a SIGKILL mid-append: truncate the last line.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - 8;
        std::fs::write(&path, &text[..cut]).expect("truncate");
        let ckpt = Checkpoint::open(&path).expect("reopen survives torn tail");
        assert_eq!(ckpt.lookup("s", 0), Some(Value::U64(1)));
        assert_eq!(ckpt.lookup("s", 1), None, "torn record is recomputed");
        // The store keeps accepting appends after the torn line.
        ckpt.record("s", 1, Value::U64(3)).expect("rec");
        drop(ckpt);
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.lookup("s", 1), Some(Value::U64(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_duplicate_record_wins() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            ckpt.record("s", 5, Value::U64(10)).expect("rec");
            ckpt.record("s", 5, Value::U64(20)).expect("rec");
            assert_eq!(ckpt.lookup("s", 5), Some(Value::U64(20)));
        }
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.lookup("s", 5), Some(Value::U64(20)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_lines_are_skipped() {
        let path = temp_path("garbage");
        std::fs::write(
            &path,
            "not json\n{\"scope\": \"s\", \"index\": 1, \"value\": 4}\n{\"scope\": 3}\n\n",
        )
        .expect("write");
        let ckpt = Checkpoint::open(&path).expect("open");
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.lookup("s", 1), Some(Value::U64(4)));
        let _ = std::fs::remove_file(&path);
    }
}
