//! JSON-lines checkpoint store for resumable experiment sweeps.
//!
//! A [`Checkpoint`] is an append-only file of one JSON object per line,
//! `{"scope": ..., "index": ..., "value": ...}`, recording the result of
//! each finished trial. An interrupted sweep rerun with the same seed and
//! `--checkpoint` path reloads the file, skips every trial it already holds,
//! and recomputes only the rest — so the final `--json` report is
//! byte-identical to an uninterrupted run (provided the recorded values
//! round-trip exactly; keep them integer- and string-valued).
//!
//! The store tolerates a torn final line: a process killed mid-append leaves
//! a truncated record, which [`Checkpoint::open`] silently drops (that trial
//! is simply recomputed). Every complete line is flushed before
//! [`Checkpoint::record`] returns, so at most one in-flight record can ever
//! be lost. [`Checkpoint::with_fsync_every`] additionally `fdatasync`s the
//! file on a configurable cadence for durability against power loss, not
//! just process death.
//!
//! Single-writer discipline is enforced, not assumed: `open` takes an OS
//! advisory lock on the file and a second concurrent `open` fails with
//! [`CheckpointError::Locked`] instead of interleaving half-lines into the
//! journal. The lock is released when the `Checkpoint` drops (or the
//! process dies — a SIGKILLed worker never wedges the file).
//!
//! The `scope` string namespaces trial indices: experiments embed the
//! workload and grid coordinates (and the master seed) so that resuming with
//! different parameters never reuses stale results. [`Checkpoint::check_scope`]
//! turns drift into a typed [`CheckpointError::ScopeMismatch`] so callers can
//! refuse a stale journal loudly instead of silently recomputing everything.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::Value;

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file could not be read, locked, or appended.
    Io(std::io::Error),
    /// Another live process holds the advisory lock on this journal.
    Locked {
        /// The contested journal path.
        path: PathBuf,
    },
    /// The journal holds records for a scope the caller did not expect —
    /// config or seed drift since the journal was written.
    ScopeMismatch {
        /// The journal path.
        path: PathBuf,
        /// The first unexpected scope found in the journal.
        found: String,
        /// Every scope the caller considers valid.
        expected: Vec<String>,
    },
}

impl CheckpointError {
    /// A short machine-readable tag (`"io"`, `"locked"`, `"scope_mismatch"`)
    /// for JSON error surfaces.
    pub fn kind(&self) -> &'static str {
        match self {
            CheckpointError::Io(_) => "io",
            CheckpointError::Locked { .. } => "locked",
            CheckpointError::ScopeMismatch { .. } => "scope_mismatch",
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(err) => write!(f, "checkpoint I/O error: {err}"),
            CheckpointError::Locked { path } => write!(
                f,
                "checkpoint {} is locked by another process (concurrent open)",
                path.display()
            ),
            CheckpointError::ScopeMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} holds records for scope {found:?}, which matches none of the {} \
                 scope(s) of this run — config or seed drift; use a fresh checkpoint path",
                path.display(),
                expected.len()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(err: std::io::Error) -> CheckpointError {
        CheckpointError::Io(err)
    }
}

/// An append-only JSON-lines store of per-trial results, safe to share
/// across rayon workers. Holds an OS advisory lock for its lifetime, so at
/// most one process writes a given journal at a time.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<(String, u64), Value>,
    writer: BufWriter<File>,
    /// `sync_data` after every `fsync_every` appends; 0 disables fsync
    /// (flush-only, the historical behavior).
    fsync_every: u64,
    appends_since_sync: u64,
}

impl Checkpoint {
    /// Open (or create) the checkpoint file at `path`, loading every intact
    /// record already present.
    ///
    /// Malformed lines — a torn final line after a kill, or stray garbage —
    /// are skipped, not errors: the corresponding trials are recomputed. A
    /// later record for the same `(scope, index)` supersedes an earlier one.
    ///
    /// The append handle is advisory-locked *before* any record is read, so
    /// two processes can never interleave writes (or read a journal the
    /// other is mid-append on): the loser gets [`CheckpointError::Locked`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Locked`] if another process holds the journal;
    /// [`CheckpointError::Io`] if the file cannot be read or opened for
    /// append.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Checkpoint, CheckpointError> {
        use std::io::{Read, Seek, SeekFrom};

        let path = path.as_ref().to_path_buf();
        // Lock first, read second: once `try_lock` succeeds no other
        // Checkpoint can append, so the load below sees a quiescent file.
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        match file.try_lock() {
            Ok(()) => {}
            Err(TryLockError::WouldBlock) => return Err(CheckpointError::Locked { path }),
            Err(TryLockError::Error(err)) => return Err(CheckpointError::Io(err)),
        }
        let mut entries = HashMap::new();
        // A killed writer can leave the file without a trailing newline; a
        // fresh append would then glue onto the torn fragment and corrupt
        // the new record too. Detect that and terminate the torn line first.
        let mut needs_newline = false;
        {
            let mut reader = File::open(&path)?;
            if reader.metadata()?.len() > 0 {
                reader.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                reader.read_exact(&mut last)?;
                needs_newline = last[0] != b'\n';
                reader.seek(SeekFrom::Start(0))?;
            }
            for line in BufReader::new(reader).lines() {
                let line = line?;
                if let Some((scope, index, value)) = parse_line(&line) {
                    entries.insert((scope, index), value);
                }
            }
        }
        let mut writer = BufWriter::new(file);
        if needs_newline {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(Checkpoint {
            path,
            inner: Mutex::new(Inner {
                entries,
                writer,
                fsync_every: 0,
                appends_since_sync: 0,
            }),
        })
    }

    /// Enable `fdatasync` on a cadence: every `every`-th append additionally
    /// syncs file data to disk. `0` disables fsync (the default): records
    /// are still flushed to the OS, which survives process death but not
    /// power loss.
    pub fn with_fsync_every(self, every: u64) -> Checkpoint {
        self.inner.lock().expect("checkpoint lock").fsync_every = every;
        self
    }

    /// The path this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of loaded + recorded entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint lock").entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded value for trial `index` of `scope`, if present.
    pub fn lookup(&self, scope: &str, index: u64) -> Option<Value> {
        self.inner
            .lock()
            .expect("checkpoint lock")
            .entries
            .get(&(scope.to_string(), index))
            .cloned()
    }

    /// Every distinct scope recorded in the journal, sorted.
    pub fn scopes(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("checkpoint lock");
        let mut scopes: Vec<String> = inner
            .entries
            .keys()
            .map(|(scope, _)| scope.clone())
            .collect();
        scopes.sort();
        scopes.dedup();
        scopes
    }

    /// Verify that every scope in the journal is one the caller expects.
    ///
    /// A resumable sweep passes the full set of scopes it can produce; a
    /// journal written by a run with different config or master seed then
    /// fails loudly instead of being silently ignored record-by-record.
    /// (A *subset* of expected scopes is fine — that is exactly what an
    /// interrupted run leaves behind.)
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ScopeMismatch`] naming the first stray scope.
    pub fn check_scope(&self, expected: &[String]) -> Result<(), CheckpointError> {
        for found in self.scopes() {
            if !expected.contains(&found) {
                return Err(CheckpointError::ScopeMismatch {
                    path: self.path.clone(),
                    found,
                    expected: expected.to_vec(),
                });
            }
        }
        Ok(())
    }

    /// Append one record and flush it to disk before returning, so a kill
    /// after `record` never loses the trial. When a fsync cadence is set
    /// (see [`Checkpoint::with_fsync_every`]), every `every`-th append also
    /// syncs file data.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] if the append, flush, or sync fails.
    pub fn record(&self, scope: &str, index: u64, value: Value) -> std::io::Result<()> {
        let line = serde_json::to_string(&Value::Object(vec![
            ("scope".to_string(), Value::String(scope.to_string())),
            ("index".to_string(), Value::U64(index)),
            ("value".to_string(), value.clone()),
        ]))
        .expect("checkpoint records serialize infallibly");
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        if inner.fsync_every > 0 {
            inner.appends_since_sync += 1;
            if inner.appends_since_sync >= inner.fsync_every {
                inner.writer.get_ref().sync_data()?;
                inner.appends_since_sync = 0;
            }
        }
        inner.entries.insert((scope.to_string(), index), value);
        Ok(())
    }
}

/// Parse one checkpoint line; `None` for anything malformed (torn tail,
/// wrong shape).
fn parse_line(line: &str) -> Option<(String, u64, Value)> {
    if line.trim().is_empty() {
        return None;
    }
    let v: Value = serde_json::from_str(line).ok()?;
    let scope = v.get("scope")?.as_str().ok()?.to_string();
    let index = match v.get("index")? {
        Value::U64(i) => *i,
        _ => return None,
    };
    let value = v.get("value")?.clone();
    Some((scope, index, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lcl-checkpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn record_then_reopen_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            assert!(ckpt.is_empty());
            ckpt.record("e13/drop=0.1", 0, Value::U64(7)).expect("rec");
            ckpt.record("e13/drop=0.1", 2, Value::Bool(true))
                .expect("rec");
            ckpt.record("e13/drop=0.2", 0, Value::String("x".into()))
                .expect("rec");
            assert_eq!(ckpt.len(), 3);
            assert_eq!(ckpt.lookup("e13/drop=0.1", 0), Some(Value::U64(7)));
        }
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.len(), 3);
        assert_eq!(again.lookup("e13/drop=0.1", 0), Some(Value::U64(7)));
        assert_eq!(again.lookup("e13/drop=0.1", 2), Some(Value::Bool(true)));
        assert_eq!(
            again.lookup("e13/drop=0.2", 0),
            Some(Value::String("x".into()))
        );
        assert_eq!(again.lookup("e13/drop=0.1", 1), None);
        assert_eq!(again.lookup("other", 0), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            ckpt.record("s", 0, Value::U64(1)).expect("rec");
            ckpt.record("s", 1, Value::U64(2)).expect("rec");
        }
        // Simulate a SIGKILL mid-append: truncate the last line.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - 8;
        std::fs::write(&path, &text[..cut]).expect("truncate");
        let ckpt = Checkpoint::open(&path).expect("reopen survives torn tail");
        assert_eq!(ckpt.lookup("s", 0), Some(Value::U64(1)));
        assert_eq!(ckpt.lookup("s", 1), None, "torn record is recomputed");
        // The store keeps accepting appends after the torn line.
        ckpt.record("s", 1, Value::U64(3)).expect("rec");
        drop(ckpt);
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.lookup("s", 1), Some(Value::U64(3)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_duplicate_record_wins() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            ckpt.record("s", 5, Value::U64(10)).expect("rec");
            ckpt.record("s", 5, Value::U64(20)).expect("rec");
            assert_eq!(ckpt.lookup("s", 5), Some(Value::U64(20)));
        }
        let again = Checkpoint::open(&path).expect("reopen");
        assert_eq!(again.lookup("s", 5), Some(Value::U64(20)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_lines_are_skipped() {
        let path = temp_path("garbage");
        std::fs::write(
            &path,
            "not json\n{\"scope\": \"s\", \"index\": 1, \"value\": 4}\n{\"scope\": 3}\n\n",
        )
        .expect("write");
        let ckpt = Checkpoint::open(&path).expect("open");
        assert_eq!(ckpt.len(), 1);
        assert_eq!(ckpt.lookup("s", 1), Some(Value::U64(4)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_open_is_a_typed_locked_error() {
        let path = temp_path("flock");
        let _ = std::fs::remove_file(&path);
        let first = Checkpoint::open(&path).expect("first open");
        match Checkpoint::open(&path) {
            Err(CheckpointError::Locked { path: p }) => assert_eq!(p, path),
            other => panic!("expected Locked, got {other:?}"),
        }
        // Releasing the first handle releases the lock.
        drop(first);
        let again = Checkpoint::open(&path).expect("open after release");
        again.record("s", 0, Value::U64(1)).expect("rec");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_cadence_preserves_records_and_behavior() {
        let path = temp_path("fsync");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = Checkpoint::open(&path).expect("open").with_fsync_every(2);
            for i in 0..5 {
                ckpt.record("s", i, Value::U64(i * 10)).expect("rec");
            }
            assert_eq!(ckpt.len(), 5);
        }
        let again = Checkpoint::open(&path).expect("reopen");
        for i in 0..5 {
            assert_eq!(again.lookup("s", i), Some(Value::U64(i * 10)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scopes_are_sorted_and_deduped() {
        let path = temp_path("scopes");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path).expect("open");
        ckpt.record("b", 0, Value::U64(1)).expect("rec");
        ckpt.record("a", 0, Value::U64(2)).expect("rec");
        ckpt.record("b", 1, Value::U64(3)).expect("rec");
        assert_eq!(ckpt.scopes(), vec!["a".to_string(), "b".to_string()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn check_scope_accepts_subsets_and_rejects_drift() {
        let path = temp_path("scopecheck");
        let _ = std::fs::remove_file(&path);
        let ckpt = Checkpoint::open(&path).expect("open");
        assert!(ckpt.check_scope(&[]).is_ok(), "empty journal matches all");
        ckpt.record("run/seed=1/p=0.1", 0, Value::U64(1))
            .expect("rec");
        let expected = vec![
            "run/seed=1/p=0.1".to_string(),
            "run/seed=1/p=0.2".to_string(),
        ];
        assert!(
            ckpt.check_scope(&expected).is_ok(),
            "partial journal is a valid resume"
        );
        // Same journal against a different seed's scope set: typed error.
        let drifted = vec!["run/seed=2/p=0.1".to_string()];
        match ckpt.check_scope(&drifted) {
            Err(CheckpointError::ScopeMismatch { found, .. }) => {
                assert_eq!(found, "run/seed=1/p=0.1");
            }
            other => panic!("expected ScopeMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
