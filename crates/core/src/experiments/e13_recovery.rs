//! E13 — self-healing: recovering faulty runs to complete valid labelings.
//!
//! E12 measures how the paper's algorithms *degrade* under the fault plane;
//! this experiment measures how cheaply the damage is *repaired*. Each trial
//! reruns an E12-style faulty execution, then hands the surviving partial
//! labeling to the generic recovery driver
//! ([`local_algorithms::recover`]): extract the residual subgraph around the
//! damaged core, run a deterministic finisher on it against the frozen
//! boundary, splice, and verify with `check_complete` — escalating the
//! boundary radius 1 → 2 → 3 when the residue is locally infeasible. Every
//! workload-catalog entry ([`crate::workloads`]) heals with its own
//! finisher, through [`Workload::heal`].
//!
//! Reported per grid point: the recovery rate (fraction of trials reaching
//! a *complete valid* labeling), the escalation histogram (how many trials
//! needed radius 0/1/2/3 — 0 means the faulty run already validated), and
//! the extra rounds the finisher paid on top of the base run. Workload
//! construction failures become typed error rows, panics are isolated and
//! their messages carried into the JSON, and [`run_checkpointed`] adds
//! kill-and-resume: per-trial records are integer-only, so a resumed sweep
//! reproduces the uninterrupted JSON byte-for-byte.

use crate::checkpoint::Checkpoint;
use crate::fabric::{decode_unit, run_unit_isolated, Sweep, SweepPoint};
use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use crate::workloads::{find_row, workloads, HealRecord, Sizes, WorkloadSlot};
use local_algorithms::RecoveryPolicy;
use local_graphs::GraphError;
use local_model::{FaultPlan, FaultSpec};
use local_obs::{MetricsRegistry, TraceSink};
use serde::{Serialize, Value};

pub use super::e12_resilience::OutcomeCounts;

/// Seed of the workload graph generators.
const GRAPH_SEED: u64 = 0xE13F;

/// Sweep configuration. The fault grid deliberately stays inside the range
/// the recovery subsystem promises to heal (drops ≤ 0.2, crashes ≤ 0.1).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Vertices in the tree-coloring workload (Δ = 16 tree).
    pub tree_n: usize,
    /// Vertices in the sinkless-orientation and edge-coloring base
    /// workloads (3-regular).
    pub sinkless_n: usize,
    /// Vertices in the MIS (4-regular), ruling-set, and defective-coloring
    /// (3-regular) workloads.
    pub mis_n: usize,
    /// Per-directed-edge per-round message-drop probabilities to sweep.
    pub drop_ps: Vec<f64>,
    /// Per-node crash probabilities to sweep.
    pub crash_ps: Vec<f64>,
    /// Trials per grid point.
    pub trials: u64,
    /// Master seed for the trial plan.
    pub master_seed: u64,
    /// Recovery policy (escalation cap and per-attempt budget).
    pub policy: RecoveryPolicy,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            tree_n: 200,
            sinkless_n: 90,
            mis_n: 120,
            drop_ps: vec![0.0, 0.1, 0.2],
            crash_ps: vec![0.0, 0.05],
            trials: 3,
            master_seed: 0xE13,
            policy: RecoveryPolicy::default(),
        }
    }

    /// The full sweep EXPERIMENTS.md records: the whole E12 grid restricted
    /// to the promised fault range.
    pub fn full() -> Self {
        Config {
            tree_n: 600,
            sinkless_n: 240,
            mis_n: 400,
            drop_ps: vec![0.0, 0.05, 0.1, 0.2],
            crash_ps: vec![0.0, 0.02, 0.1],
            trials: 8,
            master_seed: 0xE13,
            policy: RecoveryPolicy::default(),
        }
    }

    /// The catalog sizes this configuration sweeps.
    fn sizes(&self) -> Sizes {
        Sizes {
            tree_n: self.tree_n,
            sinkless_n: self.sinkless_n,
            mis_n: self.mis_n,
        }
    }
}

/// One measured grid point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name (a [`crate::workloads::NAMES`] catalog entry).
    pub workload: &'static str,
    /// Message-drop probability of this point.
    pub drop_p: f64,
    /// Node-crash probability of this point.
    pub crash_p: f64,
    /// Trials attempted.
    pub trials: u64,
    /// Trials that panicked (isolated; excluded from the other aggregates).
    pub panicked: u64,
    /// The captured panic payloads, in trial order.
    pub panic_messages: Vec<String>,
    /// Set when the workload's graph generator failed (typed error text).
    pub error: Option<String>,
    /// Trials whose recovery produced a complete valid labeling.
    pub recovered: u64,
    /// `recovered / completed` (1.0 for an empty batch would be vacuous, so
    /// 0 completed trials report 0.0).
    pub recovery_rate: f64,
    /// Escalation histogram: entry `r` counts recovered trials that needed
    /// boundary radius `r` (0 = the faulty run already validated).
    pub escalations: Vec<u64>,
    /// Failure messages of unrecovered trials, in trial order.
    pub failures: Vec<String>,
    /// Per-vertex fates of the base runs, summed over completed trials.
    pub outcomes: OutcomeCounts,
    /// Mean damaged-core size over completed trials.
    pub core_mean: f64,
    /// Mean residue size (core + dilation) over completed trials.
    pub residue_mean: f64,
    /// Mean largest decided round of the base runs.
    pub base_rounds_mean: f64,
    /// Mean extra rounds the finisher paid on top of the base run.
    pub extra_rounds_mean: f64,
    /// Largest extra-round cost observed.
    pub extra_rounds_max: u32,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Outcome13 {
    /// Measured grid points, in workload-major, drop-then-crash order.
    pub rows: Vec<Row>,
    /// Run-wide metrics (engine + recovery counters and histograms), merged
    /// over completed trials in grid/trial order. Deterministic: the same
    /// config produces byte-identical serialized metrics regardless of
    /// thread count or fabric decomposition.
    pub metrics: MetricsRegistry,
}

impl Outcome13 {
    /// The row of one grid point, if measured.
    pub fn get(&self, workload: &str, drop_p: f64, crash_p: f64) -> Option<&Row> {
        find_row(
            &self.rows,
            workload,
            |r| r.workload,
            |r| r.drop_p == drop_p && r.crash_p == crash_p,
        )
    }
}

/// The checkpoint scope of one grid point (everything a trial depends on
/// besides its index).
fn scope(cfg: &Config, workload: &str, drop_p: f64, crash_p: f64) -> String {
    format!(
        "e13/{workload}/tree_n={}/sinkless_n={}/mis_n={}/drop={drop_p}/crash={crash_p}/radius={}/seed={}",
        cfg.tree_n, cfg.sinkless_n, cfg.mis_n, cfg.policy.max_radius, cfg.master_seed
    )
}

/// Fold one grid point's trial outcomes into a [`Row`], merging each
/// completed trial's metrics into the sweep-wide registry in trial order.
fn fold_row(
    workload: &'static str,
    drop_p: f64,
    crash_p: f64,
    cfg: &Config,
    outcomes: Vec<TrialOutcome<HealRecord>>,
    metrics: &mut MetricsRegistry,
) -> Row {
    let mut panicked = 0u64;
    let mut panic_messages = Vec::new();
    let mut recovered = 0u64;
    let mut completed = 0u64;
    let mut escalations = vec![0u64; cfg.policy.max_radius as usize + 1];
    let mut failures = Vec::new();
    let mut counts = OutcomeCounts {
        halted: 0,
        crashed: 0,
        cut: 0,
    };
    let mut core_total = 0u64;
    let mut residue_total = 0u64;
    let mut base_rounds_total = 0u64;
    let mut extra_rounds_total = 0u64;
    let mut extra_rounds_max = 0u32;
    for outcome in outcomes {
        match outcome {
            TrialOutcome::Panicked { message } => {
                panicked += 1;
                panic_messages.push(message);
            }
            TrialOutcome::Ok(r) => {
                completed += 1;
                metrics.merge(&r.metrics);
                counts.halted += r.halted as u64;
                counts.crashed += r.crashed as u64;
                counts.cut += r.cut as u64;
                core_total += r.core as u64;
                residue_total += r.residue as u64;
                base_rounds_total += u64::from(r.base_rounds);
                extra_rounds_total += u64::from(r.extra_rounds);
                extra_rounds_max = extra_rounds_max.max(r.extra_rounds);
                if r.recovered {
                    recovered += 1;
                    if let Some(slot) = escalations.get_mut(r.attempts as usize) {
                        *slot += 1;
                    }
                }
                if let Some(f) = r.failure {
                    failures.push(f);
                }
            }
        }
    }
    let mean = |total: u64| {
        if completed == 0 {
            0.0
        } else {
            total as f64 / completed as f64
        }
    };
    Row {
        workload,
        drop_p,
        crash_p,
        trials: cfg.trials,
        panicked,
        panic_messages,
        error: None,
        recovered,
        recovery_rate: if completed == 0 {
            0.0
        } else {
            recovered as f64 / completed as f64
        },
        escalations,
        failures,
        outcomes: counts,
        core_mean: mean(core_total),
        residue_mean: mean(residue_total),
        base_rounds_mean: mean(base_rounds_total),
        extra_rounds_mean: mean(extra_rounds_total),
        extra_rounds_max,
    }
}

/// A grid point whose workload failed to construct.
fn error_row(
    workload: &'static str,
    drop_p: f64,
    crash_p: f64,
    cfg: &Config,
    err: &GraphError,
) -> Row {
    Row {
        workload,
        drop_p,
        crash_p,
        trials: 0,
        panicked: 0,
        panic_messages: Vec::new(),
        error: Some(err.to_string()),
        recovered: 0,
        recovery_rate: 0.0,
        escalations: vec![0; cfg.policy.max_radius as usize + 1],
        failures: Vec::new(),
        outcomes: OutcomeCounts {
            halted: 0,
            crashed: 0,
            cut: 0,
        },
        core_mean: 0.0,
        residue_mean: 0.0,
        base_rounds_mean: 0.0,
        extra_rounds_mean: 0.0,
        extra_rounds_max: 0,
    }
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Outcome13 {
    run_checkpointed(cfg, None)
}

/// [`run`] with optional checkpoint/resume (see the module docs of
/// [`crate::checkpoint`]).
pub fn run_checkpointed(cfg: &Config, checkpoint: Option<&Checkpoint>) -> Outcome13 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for slot in workloads(&cfg.sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        rows.push(error_row(name, drop_p, crash_p, cfg, &err));
                    }
                }
            }
            Ok(w) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        let spec = FaultSpec::none()
                            .with_drop(drop_p)
                            .with_crash(crash_p, w.crash_window());
                        let plan = TrialPlan::new(cfg.trials, cfg.master_seed);
                        let scope = scope(cfg, w.name(), drop_p, crash_p);
                        let tspec = TrialSpec::new()
                            .isolated()
                            .checkpointed(checkpoint.map(|c| (c, scope.as_str())));
                        let outcomes = plan.execute(tspec, |trial, _| {
                            let faults = FaultPlan::sample(w.graph(), &spec, trial.seed);
                            w.heal(trial.seed, &faults, &cfg.policy, None)
                        });
                        rows.push(fold_row(
                            w.name(),
                            drop_p,
                            crash_p,
                            cfg,
                            outcomes,
                            &mut metrics,
                        ));
                    }
                }
            }
        }
    }
    Outcome13 { rows, metrics }
}

/// [`run`] with an optional trace sink: each trial's base engine run emits
/// per-round events and the recovery driver emits one `recovery` event per
/// escalation attempt (core/residue sizes, finisher, verification verdict).
/// Trial numbers are unique across the whole grid. Tracing runs without
/// checkpoint support and without panic isolation — it is an observability
/// mode, not a production sweep mode.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Outcome13 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut base = 0u64;
    for slot in workloads(&cfg.sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        rows.push(error_row(name, drop_p, crash_p, cfg, &err));
                    }
                }
            }
            Ok(w) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        let spec = FaultSpec::none()
                            .with_drop(drop_p)
                            .with_crash(crash_p, w.crash_window());
                        let plan = TrialPlan::new(cfg.trials, cfg.master_seed);
                        let tspec = TrialSpec::new()
                            .traced(sink.as_deref_mut())
                            .trace_base(base);
                        let outcomes = plan.execute(tspec, |trial, trace| {
                            let faults = FaultPlan::sample(w.graph(), &spec, trial.seed);
                            w.heal(trial.seed, &faults, &cfg.policy, trace)
                        });
                        base += cfg.trials;
                        rows.push(fold_row(
                            w.name(),
                            drop_p,
                            crash_p,
                            cfg,
                            outcomes,
                            &mut metrics,
                        ));
                    }
                }
            }
        }
    }
    Outcome13 { rows, metrics }
}

/// The fabric view of the sweep (see [`crate::fabric`]): one
/// [`SweepPoint`] per grid cell in the exact serial fold order, with failed
/// workload slots contributing zero-trial points so the grid shape (and the
/// error rows) survive the round trip.
pub struct FabricSweep {
    cfg: Config,
    slots: Vec<WorkloadSlot>,
    points: Vec<SweepPoint>,
}

/// Build the fabric view of `cfg`'s sweep.
pub fn fabric_sweep(cfg: &Config) -> FabricSweep {
    let slots = workloads(&cfg.sizes(), GRAPH_SEED);
    let mut points = Vec::new();
    for slot in &slots {
        let (name, trials) = match slot {
            Ok(w) => (w.name(), cfg.trials),
            Err((name, _)) => (*name, 0),
        };
        for &drop_p in &cfg.drop_ps {
            for &crash_p in &cfg.crash_ps {
                points.push(SweepPoint {
                    scope: scope(cfg, name, drop_p, crash_p),
                    trials,
                });
            }
        }
    }
    FabricSweep {
        cfg: cfg.clone(),
        slots,
        points,
    }
}

impl Sweep for FabricSweep {
    fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    fn run_unit(&self, point: usize, index: u64) -> Value {
        let pps = self.cfg.drop_ps.len() * self.cfg.crash_ps.len();
        let drop_p = self.cfg.drop_ps[(point % pps) / self.cfg.crash_ps.len()];
        let crash_p = self.cfg.crash_ps[point % self.cfg.crash_ps.len()];
        let w = self.slots[point / pps]
            .as_ref()
            .expect("zero-trial error points receive no units");
        let seed = TrialPlan::new(self.cfg.trials, self.cfg.master_seed).seed(index);
        let spec = FaultSpec::none()
            .with_drop(drop_p)
            .with_crash(crash_p, w.crash_window());
        run_unit_isolated(|| {
            let faults = FaultPlan::sample(w.graph(), &spec, seed);
            w.heal(seed, &faults, &self.cfg.policy, None)
        })
    }
}

impl FabricSweep {
    /// Fold merged per-point unit values (grouped by
    /// [`crate::fabric::UnitMap::group`]) back into the same [`Outcome13`]
    /// a serial [`run`] produces — byte-identical once serialized.
    pub fn fold_units(&self, per_point: Vec<Vec<Value>>) -> Outcome13 {
        let mut rows = Vec::new();
        let mut metrics = MetricsRegistry::new();
        let mut groups = per_point.into_iter();
        for slot in &self.slots {
            for &drop_p in &self.cfg.drop_ps {
                for &crash_p in &self.cfg.crash_ps {
                    let values = groups.next().expect("one group per grid point");
                    match slot {
                        Err((name, err)) => {
                            rows.push(error_row(name, drop_p, crash_p, &self.cfg, err));
                        }
                        Ok(w) => {
                            let outcomes = values
                                .iter()
                                .map(|v| decode_unit(v).expect("fabric journal record shape"))
                                .collect();
                            rows.push(fold_row(
                                w.name(),
                                drop_p,
                                crash_p,
                                &self.cfg,
                                outcomes,
                                &mut metrics,
                            ));
                        }
                    }
                }
            }
        }
        Outcome13 { rows, metrics }
    }
}

/// Render the EXPERIMENTS.md table.
pub fn table(out: &Outcome13) -> Table {
    let mut t = Table::new(
        "E13: recovery of faulty runs to complete valid labelings".to_string(),
        &[
            "workload",
            "drop",
            "crash",
            "recovered",
            "rate",
            "escalations",
            "core",
            "extra rounds",
            "panics",
        ],
    );
    for r in &out.rows {
        let (rate, extra) = match &r.error {
            Some(_) => ("error".to_string(), "-".to_string()),
            None => (
                format!("{:.3}", r.recovery_rate),
                format!("{:.1} (max {})", r.extra_rounds_mean, r.extra_rounds_max),
            ),
        };
        let escalations = r
            .escalations
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/");
        t.push(vec![
            r.workload.to_string(),
            format!("{:.2}", r.drop_p),
            format!("{:.2}", r.crash_p),
            format!("{}/{}", r.recovered, r.trials),
            rate,
            escalations,
            format!("{:.1}", r.core_mean),
            extra,
            r.panicked.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::NAMES;

    fn tiny() -> Config {
        Config {
            tree_n: 80,
            sinkless_n: 60,
            mis_n: 60,
            drop_ps: vec![0.0, 0.2],
            crash_ps: vec![0.0, 0.05],
            trials: 2,
            master_seed: 7,
            policy: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn every_grid_point_recovers_completely() {
        let out = run(&tiny());
        assert_eq!(out.rows.len(), NAMES.len() * 2 * 2);
        for r in &out.rows {
            assert!(r.error.is_none(), "{}: {:?}", r.workload, r.error);
            assert_eq!(r.panicked, 0, "{}: no trial should panic", r.workload);
            assert_eq!(
                r.recovery_rate, 1.0,
                "{} drop={} crash={}: failures {:?}",
                r.workload, r.drop_p, r.crash_p, r.failures
            );
            assert_eq!(r.recovered, r.trials);
            assert_eq!(
                r.escalations.iter().sum::<u64>(),
                r.recovered,
                "every recovered trial lands in one histogram bucket"
            );
            assert!(r.failures.is_empty());
        }
        // Faulted grid points actually exercise the finishers: some trial
        // has a nonempty core somewhere.
        assert!(out
            .rows
            .iter()
            .any(|r| (r.drop_p > 0.0 || r.crash_p > 0.0) && r.core_mean > 0.0));
        // A fault-free MIS run validates as-is: no escalation, no extra cost.
        let clean_mis = out.get("mis", 0.0, 0.0).expect("grid point");
        assert_eq!(clean_mis.escalations[0], clean_mis.trials);
        assert_eq!(clean_mis.extra_rounds_mean, 0.0);
        assert!(!table(&out).is_empty());
    }

    #[test]
    fn sweep_is_deterministic_and_checkpoint_replay_matches() {
        let mut path = std::env::temp_dir();
        path.push(format!("lcl-e13-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cfg = tiny();
        let a = run(&cfg);
        let b = {
            let ckpt = Checkpoint::open(&path).expect("open checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        let c = {
            let ckpt = Checkpoint::open(&path).expect("reopen checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        for (x, y) in a.rows.iter().zip(b.rows.iter().zip(&c.rows)) {
            for y in [y.0, y.1] {
                assert_eq!(x.workload, y.workload);
                assert_eq!(x.recovered, y.recovered);
                assert_eq!(x.escalations, y.escalations);
                assert_eq!(x.outcomes, y.outcomes);
                assert_eq!(x.core_mean, y.core_mean);
                assert_eq!(x.residue_mean, y.residue_mean);
                assert_eq!(x.base_rounds_mean, y.base_rounds_mean);
                assert_eq!(x.extra_rounds_mean, y.extra_rounds_mean);
                assert_eq!(x.failures, y.failures);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_sweep_matches_untraced_and_emits_recovery_events() {
        use local_obs::{EventData, MemorySink};

        let cfg = tiny();
        let plain = run(&cfg);
        let mut sink = MemorySink::new();
        let traced = run_traced(&cfg, Some(&mut sink));
        assert_eq!(
            serde_json::to_string(&plain.rows).unwrap(),
            serde_json::to_string(&traced.rows).unwrap(),
            "tracing must not change the measured rows"
        );
        let events = sink.into_events();
        // The faulted grid points exercise the recovery driver, and every
        // recovery event names a real finisher and carries core ≤ residue.
        let recoveries: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Recovery {
                    core,
                    residue,
                    finisher,
                    ok,
                    ..
                } => Some((*core, *residue, finisher.clone(), *ok)),
                _ => None,
            })
            .collect();
        assert!(
            !recoveries.is_empty(),
            "faulted trials emit recovery events"
        );
        for (core, residue, finisher, _) in &recoveries {
            assert!(core <= residue, "core {core} ≤ residue {residue}");
            assert!(
                [
                    "greedy-coloring",
                    "sinkless",
                    "luby-restart",
                    "edge-greedy",
                    "ruling-sweep",
                    "defective-greedy"
                ]
                .contains(&finisher.as_str()),
                "unexpected finisher {finisher}"
            );
        }
        assert!(recoveries.iter().any(|(.., ok)| *ok));
        // The recovery driver's span brackets the recovery events.
        assert!(events
            .iter()
            .any(|e| matches!(&e.data, EventData::SpanStart { name } if name == "recover")));
    }

    /// Run a fabric sweep in-process (no subprocesses): execute every unit
    /// through the `Sweep` interface in an arbitrary order, then fold.
    fn fabric_in_process(cfg: &Config) -> Outcome13 {
        use crate::fabric::UnitMap;
        let sweep = fabric_sweep(cfg);
        let map = UnitMap::new(sweep.points());
        // Reverse unit order: execution order must not matter.
        let mut values = vec![Value::Null; map.total() as usize];
        for unit in (0..map.total()).rev() {
            let (point, index) = map.locate(unit);
            values[unit as usize] = sweep.run_unit(point, index);
        }
        sweep.fold_units(map.group(values))
    }

    #[test]
    fn fabric_units_fold_identically_to_serial() {
        let cfg = tiny();
        let serial = run(&cfg);
        let fabric = fabric_in_process(&cfg);
        assert_eq!(
            serde_json::to_string(&serial.rows).unwrap(),
            serde_json::to_string(&fabric.rows).unwrap(),
            "fabric decomposition must be invisible in the folded rows"
        );
    }

    #[test]
    fn fabric_preserves_error_rows() {
        let cfg = Config {
            sinkless_n: 61, // n·d odd: no 3-regular graph
            ..tiny()
        };
        let serial = run(&cfg);
        let fabric = fabric_in_process(&cfg);
        assert_eq!(
            serde_json::to_string(&serial.rows).unwrap(),
            serde_json::to_string(&fabric.rows).unwrap(),
            "zero-trial error points must fold to the same error rows"
        );
    }

    #[test]
    fn infeasible_generator_parameters_become_error_rows() {
        let cfg = Config {
            sinkless_n: 61, // n·d odd: no 3-regular graph
            ..tiny()
        };
        let out = run(&cfg);
        assert_eq!(
            out.rows.len(),
            NAMES.len() * 2 * 2,
            "error rows keep the grid shape"
        );
        let infeasible = ["sinkless", "edge-coloring"];
        for r in out.rows.iter().filter(|r| infeasible.contains(&r.workload)) {
            let err = r.error.as_deref().expect("cubic rows carry the error");
            assert!(err.contains("infeasible"), "{err}");
            assert_eq!(r.trials, 0);
        }
        assert!(out
            .rows
            .iter()
            .filter(|r| !infeasible.contains(&r.workload))
            .all(|r| r.error.is_none()));
    }
}
