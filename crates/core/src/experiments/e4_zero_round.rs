//! E4 — the base case of Theorem 4.
//!
//! On a Δ-regular, Δ-edge-colored graph, any 0-round RandLOCAL sinkless-
//! coloring algorithm is a fixed distribution over the Δ colors; its worst
//! edge fails with probability ≥ 1/Δ². We compare the exact minimax value
//! with Monte-Carlo estimates from actually running the uniform strategy in
//! the engine, per Δ.

use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::orientation::zero_round::{
    best_zero_round_failure, zero_round_sinkless_coloring,
};
use local_graphs::edge_coloring::konig;
use local_graphs::gen;
use local_obs::TraceSink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Degrees to test.
    pub deltas: Vec<usize>,
    /// Vertices per side of the bipartite instance.
    pub n_side: usize,
    /// Monte-Carlo trials.
    pub trials: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            deltas: vec![3, 4, 5],
            n_side: 24,
            trials: 400,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            deltas: vec![3, 4, 5, 6, 8],
            n_side: 64,
            trials: 2000,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Degree Δ.
    pub delta: usize,
    /// Exact minimax per-edge failure probability `1/Δ²`.
    pub exact: f64,
    /// Monte-Carlo per-edge failure estimate of the uniform strategy.
    pub empirical: f64,
    /// Fraction of whole runs containing at least one forbidden edge.
    pub run_failure_rate: f64,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each trial runs inside an
/// `e4_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    for &delta in &cfg.deltas {
        let mut rng = StdRng::seed_from_u64(0xE4 ^ (delta as u64) << 8);
        let g = gen::random_bipartite_regular(cfg.n_side, delta, &mut rng)
            .expect("feasible bipartite regular parameters");
        let psi = konig(&g).expect("regular bipartite graphs are Δ-edge-colorable");
        let plan = TrialPlan::new(cfg.trials, 0xE4 ^ ((delta as u64) << 8));
        let spec = TrialSpec::new()
            .traced(sink.as_deref_mut())
            .trace_base(trace_base);
        trace_base += plan.trials();
        let per_trial: Vec<_> = plan
            .execute(spec, |t, trace| {
                let _span = trace.map(|tr| tr.span("e4_trial"));
                let labels = zero_round_sinkless_coloring(&g, &psi, delta, t.seed)
                    .expect("0-round protocol cannot time out");
                let mut forbidden = 0u64;
                for (e, &(u, v)) in g.edges().iter().enumerate() {
                    if labels.get(u) == labels.get(v) && *labels.get(u) == psi.color(e) {
                        forbidden += 1;
                    }
                }
                forbidden
            })
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        let forbidden_edges: u64 = per_trial.iter().sum();
        let failed_runs: u64 = per_trial.iter().filter(|&&f| f > 0).count() as u64;
        rows.push(Row {
            delta,
            exact: best_zero_round_failure(delta),
            empirical: forbidden_edges as f64 / (cfg.trials as f64 * g.m() as f64),
            run_failure_rate: failed_runs as f64 / cfg.trials as f64,
        });
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E4: zero-round sinkless coloring — per-edge failure, exact 1/Δ² vs measured",
        &["Δ", "exact 1/Δ²", "measured", "runs w/ failure"],
    );
    for r in rows {
        t.push(vec![
            r.delta.to_string(),
            format!("{:.5}", r.exact),
            format!("{:.5}", r.empirical),
            format!("{:.3}", r.run_failure_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_matches_exact_within_tolerance() {
        let rows = run(&Config {
            deltas: vec![3, 4],
            n_side: 18,
            trials: 400,
        });
        for r in &rows {
            assert!(
                (r.empirical - r.exact).abs() < r.exact * 0.6,
                "Δ={}: measured {} vs exact {}",
                r.delta,
                r.empirical,
                r.exact
            );
            // With m = Θ(n·Δ) edges each failing at rate 1/Δ², almost every
            // run fails — the lower bound in action.
            assert!(r.run_failure_rate > 0.3, "Δ={}", r.delta);
        }
        assert_eq!(table(&rows).len(), 2);
    }
}
