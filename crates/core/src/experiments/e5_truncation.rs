//! E5 — failure decay under truncation (the round-elimination picture).
//!
//! Theorem 4 says sinkless orientation needs `Ω(min(log_Δ log(1/p), log_Δ n))`
//! rounds to reach failure probability `p`. Running the repair algorithm
//! with an increasing phase budget traces the other side of that curve: the
//! measured sink probability per vertex drops steeply with rounds, and the
//! rounds needed to first reach zero sinks grow (slowly) with `n`.

use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::orientation::sinkless_orientation;
use local_graphs::gen;
use local_obs::TraceSink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Degree (≥ 3; the problem is trivial for Δ ≤ 2... and the lower bound
    /// is for Δ-regular graphs).
    pub delta: usize,
    /// Graph sizes (vertices of the plain random Δ-regular instances; the
    /// bipartite family is only needed where an input edge coloring is —
    /// sinkless *orientation* runs on any regular graph).
    pub ns: Vec<usize>,
    /// Phase budgets to test.
    pub phases: Vec<u32>,
    /// Seeds per point.
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            delta: 3,
            ns: vec![128, 512],
            phases: vec![0, 1, 2, 4, 8],
            seeds: 20,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            delta: 3,
            ns: vec![128, 512, 2048, 8192],
            phases: vec![0, 1, 2, 4, 8, 16, 32],
            seeds: 50,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Graph size.
    pub n: usize,
    /// Phase budget (rounds = 2 + 2·phases).
    pub phases: u32,
    /// Mean per-vertex sink probability.
    pub sink_probability: f64,
    /// Fraction of runs ending with at least one sink.
    pub run_failure_rate: f64,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each trial runs inside an
/// `e5_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    for &n in &cfg.ns {
        let mut rng = StdRng::seed_from_u64(0xE5 ^ (n as u64) << 4);
        let g = gen::random_regular(n, cfg.delta, &mut rng).expect("feasible parameters");
        for &phases in &cfg.phases {
            let plan = TrialPlan::new(cfg.seeds, 0xE5 ^ ((n as u64) << 8) ^ u64::from(phases));
            let spec = TrialSpec::new()
                .traced(sink.as_deref_mut())
                .trace_base(trace_base);
            trace_base += plan.trials();
            let per_trial: Vec<_> = plan
                .execute(spec, |t, trace| {
                    let _span = trace.map(|tr| tr.span("e5_trial"));
                    let out = sinkless_orientation(&g, t.seed, phases).expect("fixed schedule");
                    out.sinks as u64
                })
                .into_iter()
                .map(TrialOutcome::into_ok)
                .collect();
            let sinks_total: u64 = per_trial.iter().sum();
            let failed: u64 = per_trial.iter().filter(|&&s| s > 0).count() as u64;
            rows.push(Row {
                n,
                phases,
                sink_probability: sinks_total as f64 / (cfg.seeds as f64 * n as f64),
                run_failure_rate: failed as f64 / cfg.seeds as f64,
            });
        }
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row], delta: usize) -> Table {
    let mut t = Table::new(
        format!("E5: sinkless orientation (Δ = {delta}) — sink probability vs round budget"),
        &["n", "phases", "P[vertex is sink]", "P[run has a sink]"],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.phases.to_string(),
            format!("{:.5}", r.sink_probability),
            format!("{:.3}", r.run_failure_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_decays_with_budget() {
        let rows = run(&Config {
            delta: 3,
            ns: vec![256],
            phases: vec![0, 8],
            seeds: 15,
        });
        assert_eq!(rows.len(), 2);
        let p0 = rows[0].sink_probability;
        let p8 = rows[1].sink_probability;
        assert!(p0 > 0.05, "random orientation leaves ~2^-Δ sinks: {p0}");
        assert!(
            p8 < p0 / 3.0,
            "8 phases must cut failure sharply: {p0} -> {p8}"
        );
        assert_eq!(table(&rows, 3).len(), 2);
    }
}
