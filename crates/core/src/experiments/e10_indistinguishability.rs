//! E10 — the indistinguishability principle, counted.
//!
//! Linial's lower bound (quoted in the paper's introduction) starts from:
//! *in `o(log_Δ n)` rounds, a vertex cannot distinguish a tree from a graph
//! of girth `Ω(log_Δ n)`*. We make that quantitative: for radius `t` we
//! count the distinct radius-`t` views among (a) anonymous vertices of a
//! high-girth Δ-regular graph and (b) interior vertices of the complete
//! (Δ−1)-ary tree, and check that below half the girth the regular graph
//! has exactly **one** view — and that it *equals* the tree-interior view.
//! The moment `t` crosses `(girth−1)/2`, cycles become visible and the view
//! count explodes.

use crate::report::Table;
use local_graphs::{analysis, gen, Graph};
use local_model::ball;
use local_obs::{Trace, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Degree Δ (also the tree arity + 1).
    pub delta: usize,
    /// Vertices per side of the bipartite high-girth instance.
    pub n_side: usize,
    /// Girth to enforce.
    pub min_girth: usize,
    /// Radii to probe.
    pub radii: Vec<usize>,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            delta: 3,
            n_side: 100,
            min_girth: 6,
            radii: vec![0, 1, 2, 3, 4],
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            delta: 3,
            n_side: 250,
            min_girth: 8,
            radii: vec![0, 1, 2, 3, 4, 5],
        }
    }
}

/// One measured radius.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Radius `t`.
    pub t: usize,
    /// Whether `t < (girth−1)/2` (the indistinguishability horizon).
    pub below_horizon: bool,
    /// Distinct anonymous views in the high-girth graph.
    pub graph_views: usize,
    /// Whether the (unique sub-horizon) graph view equals the tree-interior
    /// view.
    pub matches_tree: bool,
}

/// Generate the instance and run the sweep.
///
/// # Panics
///
/// Panics if the generator cannot achieve the requested girth.
pub fn run(cfg: &Config) -> (Vec<Row>, usize) {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each radius is measured inside an
/// `e10_radius` span on trace trial 0, so the stream records per-radius
/// wall-clock timing.
pub fn run_traced(cfg: &Config, sink: Option<&mut dyn TraceSink>) -> (Vec<Row>, usize) {
    let trace = sink.as_ref().map(|_| Trace::new(0));
    let mut rng = StdRng::seed_from_u64(0xE10);
    let g = gen::high_girth_regular(cfg.n_side, cfg.delta, cfg.min_girth, &mut rng)
        .expect("girth achievable at this scale");
    let girth = analysis::girth(&g).expect("regular graphs have cycles");
    let tree = gen::complete_dary_tree(
        cfg.delta * (cfg.delta - 1).pow(*cfg.radii.iter().max().unwrap_or(&4) as u32 + 1),
        cfg.delta,
    );
    let rows = cfg
        .radii
        .iter()
        .map(|&t| {
            let _span = trace.as_ref().map(|tr| tr.span("e10_radius"));
            // Views up to port renumbering (the equivalence lower bounds
            // use); balls that wrap a cycle fall back to the exact ordered
            // encoding, which only inflates the beyond-horizon counts.
            let views: HashSet<_> = g
                .vertices()
                .map(|v| {
                    ball::encode_unordered(&g, v, t, None)
                        .unwrap_or_else(|| ball::encode(&g, v, t, None, None))
                })
                .collect();
            let tree_view = interior_view(&tree, t);
            let matches_tree = tree_view
                .map(|tv| views.len() == 1 && views.contains(&tv))
                .unwrap_or(false);
            Row {
                t,
                below_horizon: 2 * t + 1 < girth,
                graph_views: views.len(),
                matches_tree,
            }
        })
        .collect();
    if let (Some(sink), Some(trace)) = (sink, trace) {
        for event in trace.into_events() {
            sink.record(&event);
        }
        sink.flush();
    }
    (rows, girth)
}

/// The view of a tree vertex whose `t`-ball contains no leaves, if any.
fn interior_view(tree: &Graph, t: usize) -> Option<ball::BallEncoding> {
    let delta = tree.max_degree();
    tree.vertices()
        .find(|&v| {
            let dist = analysis::bfs_distances(tree, v);
            tree.vertices()
                .filter(|&u| dist[u] <= t)
                .all(|u| tree.degree(u) == delta)
        })
        .and_then(|v| ball::encode_unordered(tree, v, t, None))
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row], delta: usize, girth: usize) -> Table {
    let mut t = Table::new(
        format!(
            "E10: indistinguishability (Δ = {delta}, girth = {girth}) — distinct radius-t views"
        ),
        &["t", "t < (g−1)/2", "distinct views", "equals tree interior"],
    );
    for r in rows {
        t.push(vec![
            r.t.to_string(),
            r.below_horizon.to_string(),
            r.graph_views.to_string(),
            r.matches_tree.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_view_below_horizon_then_explosion() {
        let (rows, girth) = run(&Config {
            delta: 3,
            n_side: 80,
            min_girth: 6,
            radii: vec![0, 1, 2, 4],
        });
        assert!(girth >= 6);
        for r in &rows {
            if r.below_horizon {
                assert_eq!(
                    r.graph_views, 1,
                    "t = {}: below the horizon all views coincide",
                    r.t
                );
                assert!(r.matches_tree, "t = {}: and equal the tree interior", r.t);
            }
        }
        // At t = 4 (≥ girth/2) cycles are visible to someone: many views.
        let beyond = rows
            .iter()
            .find(|r| !r.below_horizon)
            .expect("t=4 is beyond");
        assert!(beyond.graph_views > 1);
        assert!(!table(&rows, 3, girth).is_empty());
    }
}
