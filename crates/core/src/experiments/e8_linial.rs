//! E8 — Linial's coloring (Theorems 1 & 2).
//!
//! Two tables: (a) the one-round palette shrink `k → O((Δ log_Δ k)²)` of
//! the cover-free recoloring, and (b) the `O(log* n)` convergence of the
//! iterated algorithm with its `β·Δ²` fixpoint.

use crate::report::Table;
use local_algorithms::color::{linial_color, LinialSchedule, PolyFamily};
use local_graphs::gen;
use local_lcl::problems::VertexColoring;
use local_lcl::LclProblem;
use local_model::IdAssignment;
use local_obs::{Trace, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Source palettes for the one-round table.
    pub ks: Vec<u64>,
    /// Degrees for both tables.
    pub deltas: Vec<usize>,
    /// Graph sizes for the convergence table.
    pub ns: Vec<usize>,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            ks: vec![1 << 10, 1 << 20, 1 << 40],
            deltas: vec![3, 8],
            ns: vec![1 << 8, 1 << 12, 1 << 16],
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            ks: vec![1 << 10, 1 << 20, 1 << 30, 1 << 40, 1 << 60],
            deltas: vec![3, 8, 16],
            ns: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18],
        }
    }
}

/// One one-round shrink measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShrinkRow {
    /// Degree Δ.
    pub delta: usize,
    /// Source palette `k`.
    pub k: u64,
    /// Palette after one recoloring round.
    pub after_one_round: u64,
    /// Full schedule length to the fixpoint.
    pub rounds_to_fixpoint: u32,
    /// The fixpoint palette (`β·Δ²`).
    pub fixpoint: u64,
}

/// One convergence measurement on real graphs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Degree Δ.
    pub delta: usize,
    /// Graph size.
    pub n: usize,
    /// Measured rounds.
    pub rounds: u32,
    /// Final palette.
    pub palette: usize,
}

/// Run both sweeps.
pub fn run(cfg: &Config) -> (Vec<ShrinkRow>, Vec<ConvergenceRow>) {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each convergence instance runs
/// inside an `e8_convergence` span on trace trial 0, so the stream records
/// per-instance wall-clock timing (the shrink table is pure arithmetic and
/// is not traced).
pub fn run_traced(
    cfg: &Config,
    sink: Option<&mut dyn TraceSink>,
) -> (Vec<ShrinkRow>, Vec<ConvergenceRow>) {
    let trace = sink.as_ref().map(|_| Trace::new(0));
    let mut shrink = Vec::new();
    for &delta in &cfg.deltas {
        for &k in &cfg.ks {
            let fam = PolyFamily::new(k, delta);
            let schedule = LinialSchedule::new(k, delta);
            shrink.push(ShrinkRow {
                delta,
                k,
                after_one_round: if fam.shrinks() { fam.palette() } else { k },
                rounds_to_fixpoint: schedule.rounds(),
                fixpoint: schedule.final_palette(),
            });
        }
    }
    let mut conv = Vec::new();
    for &delta in &cfg.deltas {
        for &n in &cfg.ns {
            let _span = trace.as_ref().map(|t| t.span("e8_convergence"));
            let g = if delta == 2 {
                gen::cycle(n)
            } else {
                let mut rng = StdRng::seed_from_u64(0xE8 ^ (n as u64) << 2 ^ delta as u64);
                gen::random_tree_max_degree(n, delta, &mut rng)
            };
            let out = linial_color(&g, &IdAssignment::Shuffled { seed: 7 });
            VertexColoring::new(out.palette)
                .validate(&g, &out.labels)
                .expect("Linial output must be proper");
            conv.push(ConvergenceRow {
                delta,
                n,
                rounds: out.rounds,
                palette: out.palette,
            });
        }
    }
    if let (Some(sink), Some(trace)) = (sink, trace) {
        for event in trace.into_events() {
            sink.record(&event);
        }
        sink.flush();
    }
    (shrink, conv)
}

/// Render the one-round table.
pub fn shrink_table(rows: &[ShrinkRow]) -> Table {
    let mut t = Table::new(
        "E8a: Theorem 1 — one-round palette shrink and distance to the Δ² fixpoint",
        &["Δ", "k", "after 1 round", "rounds to fixpoint", "fixpoint"],
    );
    for r in rows {
        t.push(vec![
            r.delta.to_string(),
            format!("2^{}", 63 - r.k.leading_zeros()),
            r.after_one_round.to_string(),
            r.rounds_to_fixpoint.to_string(),
            r.fixpoint.to_string(),
        ]);
    }
    t
}

/// Render the convergence table.
pub fn convergence_table(rows: &[ConvergenceRow]) -> Table {
    let mut t = Table::new(
        "E8b: Theorem 2 — Linial rounds and palette on random degree-capped trees",
        &["Δ", "n", "rounds", "palette"],
    );
    for r in rows {
        t.push(vec![
            r.delta.to_string(),
            r.n.to_string(),
            r.rounds.to_string(),
            r.palette.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_and_convergence_shapes() {
        let (shrink, conv) = run(&Config {
            ks: vec![1 << 20, 1 << 40],
            deltas: vec![3],
            ns: vec![256, 4096],
        });
        // One round shrinks 2^20 and 2^40 palettes massively.
        for s in &shrink {
            assert!(s.after_one_round < s.k / 100);
            assert!(s.fixpoint <= 40 * 9, "fixpoint {} is O(Δ²)", s.fixpoint);
        }
        // Rounds barely grow over 16x size increase.
        assert!(conv[1].rounds <= conv[0].rounds + 2);
        assert!(!shrink_table(&shrink).is_empty());
        assert!(!convergence_table(&conv).is_empty());
    }
}
