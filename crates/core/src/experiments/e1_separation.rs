//! E1 — the headline exponential separation.
//!
//! Deterministic tree Δ-coloring (Theorem 9, `Θ(log_Δ n)` — also a lower
//! bound by Theorem 5) versus the paper's randomized algorithm (Theorem 10,
//! `O(log_Δ log n + log* n)`), swept over `n` for several Δ. The *shape*
//! to reproduce: the deterministic series grows logarithmically in `n` while
//! the randomized series is nearly flat, and the gap widens exponentially.
//!
//! Workload: the **complete (Δ−1)-ary tree** — the instance that realizes
//! the deterministic lower bound (its internal vertices have degree exactly
//! Δ, so the H-partition must peel one leaf layer per round, `ℓ =` tree
//! depth `= Θ(log_Δ n)`). Random attachment trees are *easy* instances
//! (nearly all degrees are below Δ and everything peels at once), which is
//! itself a finding the experiment documents.

use crate::fit::{best_model, GrowthModel};
use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::color::be_forest_coloring_detailed;
use local_algorithms::tree::{theorem10_color, Theorem10Config};
use local_graphs::gen;
use local_lcl::problems::VertexColoring;
use local_lcl::LclProblem;
use local_obs::TraceSink;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Maximum degrees to test.
    pub deltas: Vec<usize>,
    /// Tree sizes to sweep.
    pub ns: Vec<usize>,
    /// Independent seeds averaged per point.
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            deltas: vec![16],
            ns: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14],
            seeds: 2,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    ///
    /// Δ is capped at 32: the deterministic side carries an additive
    /// `β·Δ²` color-reduction term (our simple one-class-per-round
    /// reduction), which at Δ = 55 and n = 2^18 pushes a single run into
    /// hours of simulation. The separation *shape* (log n vs log log n
    /// growth) is what the experiment tests, and it is fully visible at
    /// Δ ≤ 32.
    pub fn full() -> Self {
        Config {
            deltas: vec![9, 16, 32],
            ns: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
            seeds: 2,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Maximum degree Δ.
    pub delta: usize,
    /// Tree size.
    pub n: usize,
    /// Rounds of the deterministic Theorem-9 algorithm.
    pub det_rounds: f64,
    /// The H-partition depth `ℓ` — the `Θ(log_Δ n)` part of the
    /// deterministic bound, isolated from the implementation's `O(Δ²)`
    /// additive color-reduction constant.
    pub det_peel: f64,
    /// Rounds of the randomized Theorem-10 algorithm (mean over seeds).
    pub rand_rounds: f64,
    /// The randomized algorithm's Phase-2 rounds — its
    /// `O(log_Δ log n)`-shaped part.
    pub rand_phase2: f64,
    /// `det / rand` — the separation factor.
    pub ratio: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// All measured points.
    pub rows: Vec<Row>,
    /// Per-Δ best-fit growth model of the deterministic series.
    pub det_fit: Vec<(usize, GrowthModel)>,
    /// Per-Δ best-fit growth model of the randomized series.
    pub rand_fit: Vec<(usize, GrowthModel)>,
}

/// Run the sweep. Every produced coloring is validated before being counted.
pub fn run(cfg: &Config) -> Outcome {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each randomized trial runs inside
/// an `e1_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Outcome {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    let mut det_fit = Vec::new();
    let mut rand_fit = Vec::new();
    for &delta in &cfg.deltas {
        let mut det_series = Vec::new();
        let mut rand_series = Vec::new();
        let mut measured_sizes: Vec<usize> = Vec::new();
        for &n in &cfg.ns {
            // The complete tree rounds n up to a full layer; report its
            // actual size, skip sizes already measured (two configured n can
            // round to the same tree), and skip points whose simulation cost
            // (the Δ-only reduction constant × vertices) exceeds a
            // laptop-minutes budget — they add no new shape information.
            let g = gen::complete_dary_tree(n, delta);
            if measured_sizes.contains(&g.n()) || (delta * delta * g.n()) as u64 > 100_000_000 {
                continue;
            }
            measured_sizes.push(g.n());
            let actual_n = g.n();

            // The deterministic side is seed-independent: run it once.
            let ids: Vec<u64> = (0..g.n() as u64).collect();
            let det = be_forest_coloring_detailed(&g, delta, &ids, None, 0);
            VertexColoring::new(delta)
                .validate(&g, &det.coloring.labels)
                .expect("Theorem 9 output must be proper");
            let det_rounds = f64::from(det.coloring.rounds);
            let det_peel = f64::from(det.peel_rounds);

            let plan = TrialPlan::new(cfg.seeds, 0xE1 ^ ((delta as u64) << 32) ^ (n as u64));
            let spec = TrialSpec::new()
                .traced(sink.as_deref_mut())
                .trace_base(trace_base);
            trace_base += plan.trials();
            let per_trial: Vec<(f64, f64)> = plan
                .execute(spec, |t, trace| {
                    let _span = trace.map(|tr| tr.span("e1_trial"));
                    let rand = theorem10_color(&g, delta, t.seed, Theorem10Config::default())
                        .expect("engine should not hit round limits");
                    VertexColoring::new(delta)
                        .validate(&g, &rand.coloring.labels)
                        .expect("Theorem 10 output must be proper");
                    (
                        f64::from(rand.coloring.rounds),
                        f64::from(rand.phase2_rounds),
                    )
                })
                .into_iter()
                .map(TrialOutcome::into_ok)
                .collect();
            let k = cfg.seeds as f64;
            let rand_rounds = per_trial.iter().map(|p| p.0).sum::<f64>() / k;
            let rand_phase2 = per_trial.iter().map(|p| p.1).sum::<f64>() / k;
            // Fit the n-dependent parts: the peel depth (det) and the full
            // randomized round count (its other phases are Δ-only).
            det_series.push((actual_n as f64, det_peel));
            rand_series.push((actual_n as f64, rand_rounds));
            rows.push(Row {
                delta,
                n: actual_n,
                det_rounds,
                det_peel,
                rand_rounds,
                rand_phase2,
                ratio: det_rounds / rand_rounds.max(1.0),
            });
        }
        if det_series.len() >= 2 {
            det_fit.push((delta, best_model(&det_series).model));
            rand_fit.push((delta, best_model(&rand_series).model));
        }
    }
    Outcome {
        rows,
        det_fit,
        rand_fit,
    }
}

/// Render the outcome as the EXPERIMENTS.md table.
pub fn table(out: &Outcome) -> Table {
    let mut t = Table::new(
        "E1: tree Δ-coloring — DetLOCAL (Thm 9) vs RandLOCAL (Thm 10) rounds",
        &[
            "Δ",
            "n",
            "det total",
            "det peel ℓ",
            "rand total",
            "rand ph2",
            "det/rand",
        ],
    );
    for r in &out.rows {
        t.push(vec![
            r.delta.to_string(),
            r.n.to_string(),
            format!("{:.1}", r.det_rounds),
            format!("{:.1}", r.det_peel),
            format!("{:.1}", r.rand_rounds),
            format!("{:.1}", r.rand_phase2),
            format!("{:.2}", r.ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_separation_shape() {
        let cfg = Config {
            deltas: vec![9],
            ns: vec![1 << 8, 1 << 16],
            seeds: 1,
        };
        let out = run(&cfg);
        assert_eq!(out.rows.len(), 2);
        let small = &out.rows[0];
        let large = &out.rows[1];
        // Deterministic rounds grow with n; randomized barely move.
        assert!(large.det_rounds > small.det_rounds);
        // The peel depth grows with log n; the randomized phase 2 barely.
        assert!(large.det_peel > small.det_peel);
        let t = table(&out);
        assert_eq!(t.len(), 2);
    }
}
