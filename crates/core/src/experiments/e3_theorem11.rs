//! E3 — Theorem 11's constant-Δ algorithm.
//!
//! Round profile per phase and the size of the shattered set `S` (whose
//! components the paper proves are `O(log n)` w.h.p. for Δ ≥ 55). The shape
//! to reproduce: setup + phase-1 rounds depend on Δ only; phase-2 rounds
//! (Theorem 9 on `S`) grow like `log log n`; total ≪ the deterministic
//! `Θ(log_Δ n)`.

use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::tree::theorem11_color;
use local_graphs::gen;
use local_lcl::problems::VertexColoring;
use local_lcl::LclProblem;
use local_obs::TraceSink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Maximum degree Δ (paper: ≥ 55; any Δ ≥ 9 runs).
    pub delta: usize,
    /// Tree sizes.
    pub ns: Vec<usize>,
    /// Seeds per point.
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            delta: 12,
            ns: vec![1 << 9, 1 << 11, 1 << 13],
            seeds: 2,
        }
    }

    /// The full sweep (uses the paper's Δ = 55 regime; sizes capped because
    /// the one-time base-coloring reduction costs `β·Δ²` ≈ 13k rounds at
    /// Δ = 55, which the engine simulates faithfully — large n would take
    /// hours without changing the measured shape).
    pub fn full() -> Self {
        Config {
            delta: 55,
            ns: vec![1 << 9, 1 << 10, 1 << 11, 1 << 12],
            seeds: 2,
        }
    }
}

/// One measured point (means over seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Tree size.
    pub n: usize,
    /// Setup rounds (base coloring).
    pub setup: f64,
    /// Phase-1 rounds (MIS peeling).
    pub phase1: f64,
    /// Phase-2 rounds (3-coloring `S`).
    pub phase2: f64,
    /// Phase-3 rounds (completion).
    pub phase3: f64,
    /// `|S|` (max over seeds).
    pub s_size: usize,
    /// Largest `S`-component (max over seeds).
    pub s_largest: usize,
}

/// Run the sweep; every coloring is validated.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each trial runs inside an
/// `e3_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    for &n in &cfg.ns {
        let plan = TrialPlan::new(cfg.seeds, 0xE3 ^ ((n as u64) << 24));
        let spec = TrialSpec::new()
            .traced(sink.as_deref_mut())
            .trace_base(trace_base);
        trace_base += plan.trials();
        let per_trial: Vec<_> = plan
            .execute(spec, |t, trace| {
                let _span = trace.map(|tr| tr.span("e3_trial"));
                let mut rng = StdRng::seed_from_u64(t.seed);
                let g = gen::random_tree_max_degree(n, cfg.delta, &mut rng);
                let out = theorem11_color(&g, cfg.delta, t.seed).expect("fixed schedules");
                VertexColoring::new(cfg.delta)
                    .validate(&g, &out.coloring.labels)
                    .expect("Theorem 11 output must be proper");
                (
                    f64::from(out.setup_rounds),
                    f64::from(out.phase1_rounds),
                    f64::from(out.phase2_rounds),
                    f64::from(out.phase3_rounds),
                    out.stats.bad_vertices,
                    out.stats.largest_bad_component,
                )
            })
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        let su: f64 = per_trial.iter().map(|p| p.0).sum();
        let p1: f64 = per_trial.iter().map(|p| p.1).sum();
        let p2: f64 = per_trial.iter().map(|p| p.2).sum();
        let p3: f64 = per_trial.iter().map(|p| p.3).sum();
        let s_size = per_trial.iter().map(|p| p.4).max().unwrap_or(0);
        let s_largest = per_trial.iter().map(|p| p.5).max().unwrap_or(0);
        let k = cfg.seeds as f64;
        rows.push(Row {
            n,
            setup: su / k,
            phase1: p1 / k,
            phase2: p2 / k,
            phase3: p3 / k,
            s_size,
            s_largest,
        });
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row], delta: usize) -> Table {
    let mut t = Table::new(
        format!("E3: Theorem 11 (Δ = {delta}) — per-phase rounds and shattered set S"),
        &[
            "n",
            "setup",
            "phase1",
            "phase2",
            "phase3",
            "|S|",
            "max S comp",
        ],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            format!("{:.1}", r.setup),
            format!("{:.1}", r.phase1),
            format!("{:.1}", r.phase2),
            format!("{:.1}", r.phase3),
            r.s_size.to_string(),
            r.s_largest.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_n_independent_phase1() {
        let cfg = Config {
            delta: 10,
            ns: vec![256, 1024],
            seeds: 1,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        // Setup and phase 1 depend on Δ (and log* n): near-identical across n.
        assert!((rows[0].phase1 - rows[1].phase1).abs() <= rows[0].phase1 * 0.5 + 8.0);
        // S components stay tiny.
        for r in &rows {
            assert!(r.s_largest <= 64, "S component {} too large", r.s_largest);
        }
        assert_eq!(table(&rows, 10).len(), 2);
    }
}
