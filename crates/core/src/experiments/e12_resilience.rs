//! E12 — resilience of the paper's algorithms under the fault plane.
//!
//! The paper's model is fault-free; this experiment asks how gracefully its
//! algorithms *degrade* when the model is weakened to crash-stop nodes and
//! lossy/laggy links ([`FaultPlan`]). Every entry of the workload catalog
//! ([`crate::workloads`]) runs under a grid of drop/crash rates — the three
//! legacy cores (`tree-coloring`, `sinkless`, `mis`) plus the extended LCL
//! menu (`edge-coloring`, `ruling-set`, `defective-coloring`).
//!
//! (The full Theorem 10/11 pipelines splice a *centralized* deterministic
//! finisher onto the randomized phase; faults are injected in the
//! message-passing phase, which is the part the model is about — documented
//! as a substitution in EXPERIMENTS.md.)
//!
//! Each surviving output is scored by the matching LCL verifier over the
//! vertices whose checking ball survived ([`Workload::measure`]); a
//! silenced vertex makes its whole neighborhood uncheckable and counts
//! *against* validity. Trials run through the isolated trial harness, so a
//! panicking configuration is recorded as `panicked` (with its panic
//! messages carried into the JSON report) instead of taking the sweep down,
//! and every aggregate folds in trial order — the emitted JSON is
//! byte-identical regardless of worker-thread count. A workload whose graph
//! generator fails (infeasible parameters, exhausted retries) contributes
//! grid-shaped rows carrying the typed error instead of panicking the
//! sweep. [`run_checkpointed`] adds kill-and-resume support through the
//! [`Checkpoint`] store.

use crate::checkpoint::Checkpoint;
use crate::fabric::{decode_unit, run_unit_isolated, Sweep, SweepPoint};
use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use crate::workloads::{find_row, workloads, MeasureRecord, Sizes, WorkloadSlot};
use local_graphs::GraphError;
use local_model::{FaultPlan, FaultSpec};
use local_obs::{MetricsRegistry, TraceSink};
use serde::{Deserialize, Serialize, Value};

/// Seed of the workload graph generators.
const GRAPH_SEED: u64 = 0xE12F;

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Vertices in the tree-coloring workload (Δ = 16 tree).
    pub tree_n: usize,
    /// Vertices in the sinkless-orientation and edge-coloring base
    /// workloads (3-regular).
    pub sinkless_n: usize,
    /// Vertices in the MIS (4-regular), ruling-set, and defective-coloring
    /// (3-regular) workloads.
    pub mis_n: usize,
    /// Per-directed-edge per-round message-drop probabilities to sweep.
    pub drop_ps: Vec<f64>,
    /// Per-node crash probabilities to sweep.
    pub crash_ps: Vec<f64>,
    /// Trials per grid point.
    pub trials: u64,
    /// Master seed for the trial plan.
    pub master_seed: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            tree_n: 200,
            sinkless_n: 90,
            mis_n: 120,
            drop_ps: vec![0.0, 0.1, 0.3],
            crash_ps: vec![0.0, 0.05],
            trials: 3,
            master_seed: 0xE12,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            tree_n: 600,
            sinkless_n: 240,
            mis_n: 400,
            drop_ps: vec![0.0, 0.05, 0.1, 0.2, 0.4],
            crash_ps: vec![0.0, 0.02, 0.1],
            trials: 8,
            master_seed: 0xE12,
        }
    }

    /// The catalog sizes this configuration sweeps.
    fn sizes(&self) -> Sizes {
        Sizes {
            tree_n: self.tree_n,
            sinkless_n: self.sinkless_n,
            mis_n: self.mis_n,
        }
    }
}

/// Per-vertex fate counts, summed over a grid point's completed trials.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Vertices that decided an output.
    pub halted: u64,
    /// Vertices silenced by the crash schedule.
    pub crashed: u64,
    /// Vertices still undecided when the sweep budget ran out.
    pub cut: u64,
}

/// One measured grid point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name (a [`crate::workloads::NAMES`] catalog entry).
    pub workload: &'static str,
    /// Message-drop probability of this point.
    pub drop_p: f64,
    /// Node-crash probability of this point.
    pub crash_p: f64,
    /// Trials attempted.
    pub trials: u64,
    /// Trials that panicked (isolated; excluded from the other aggregates).
    pub panicked: u64,
    /// The captured panic payloads, in trial order (empty when nothing
    /// panicked).
    pub panic_messages: Vec<String>,
    /// Set when the workload's graph generator failed: the typed
    /// [`GraphError`] rendered as text. Such rows carry zeroed aggregates.
    pub error: Option<String>,
    /// Per-vertex fates summed over completed trials.
    pub outcomes: OutcomeCounts,
    /// Fraction of vertices that were both checkable and acceptable
    /// (see `PartialValidity::validity_rate`), pooled over trials.
    pub validity_rate: f64,
    /// Mean over trials of the largest decided round.
    pub rounds_mean: f64,
    /// Largest decided round observed.
    pub rounds_max: u32,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Outcome12 {
    /// Measured grid points, in workload-major, drop-then-crash order.
    pub rows: Vec<Row>,
    /// Run-wide engine metrics merged over completed trials in grid/trial
    /// order. Deterministic: the same config produces byte-identical
    /// serialized metrics regardless of thread count or fabric
    /// decomposition.
    pub metrics: MetricsRegistry,
}

impl Outcome12 {
    /// The row of one grid point, if measured.
    pub fn get(&self, workload: &str, drop_p: f64, crash_p: f64) -> Option<&Row> {
        find_row(
            &self.rows,
            workload,
            |r| r.workload,
            |r| r.drop_p == drop_p && r.crash_p == crash_p,
        )
    }
}

/// The checkpoint scope of one grid point: everything a trial's result
/// depends on besides its index, so resuming with changed parameters never
/// reuses stale records.
fn scope(experiment: &str, cfg: &Config, workload: &str, drop_p: f64, crash_p: f64) -> String {
    format!(
        "{experiment}/{workload}/tree_n={}/sinkless_n={}/mis_n={}/drop={drop_p}/crash={crash_p}/seed={}",
        cfg.tree_n, cfg.sinkless_n, cfg.mis_n, cfg.master_seed
    )
}

/// Fold one grid point's trial outcomes into a [`Row`], merging each
/// completed trial's metrics into the sweep-wide registry in trial order.
fn fold_row(
    workload: &'static str,
    drop_p: f64,
    crash_p: f64,
    trials: u64,
    outcomes: Vec<TrialOutcome<MeasureRecord>>,
    metrics: &mut MetricsRegistry,
) -> Row {
    let mut panicked = 0u64;
    let mut panic_messages = Vec::new();
    let mut counts = OutcomeCounts {
        halted: 0,
        crashed: 0,
        cut: 0,
    };
    let mut valid = 0u64;
    let mut scored = 0u64;
    let mut completed = 0u64;
    let mut rounds_total = 0u64;
    let mut rounds_max = 0u32;
    for outcome in outcomes {
        match outcome {
            TrialOutcome::Panicked { message } => {
                panicked += 1;
                panic_messages.push(message);
            }
            TrialOutcome::Ok(r) => {
                completed += 1;
                metrics.merge(&r.metrics);
                counts.halted += r.halted as u64;
                counts.crashed += r.crashed as u64;
                counts.cut += r.cut as u64;
                valid += r.valid as u64;
                scored += (r.checked + r.skipped) as u64;
                rounds_total += u64::from(r.max_round);
                rounds_max = rounds_max.max(r.max_round);
            }
        }
    }
    Row {
        workload,
        drop_p,
        crash_p,
        trials,
        panicked,
        panic_messages,
        error: None,
        outcomes: counts,
        validity_rate: if scored == 0 {
            0.0
        } else {
            valid as f64 / scored as f64
        },
        rounds_mean: if completed == 0 {
            0.0
        } else {
            rounds_total as f64 / completed as f64
        },
        rounds_max,
    }
}

/// A grid point whose workload failed to construct: zeroed aggregates plus
/// the typed error, so the JSON report shows *why* the numbers are missing.
fn error_row(workload: &'static str, drop_p: f64, crash_p: f64, err: &GraphError) -> Row {
    Row {
        workload,
        drop_p,
        crash_p,
        trials: 0,
        panicked: 0,
        panic_messages: Vec::new(),
        error: Some(err.to_string()),
        outcomes: OutcomeCounts {
            halted: 0,
            crashed: 0,
            cut: 0,
        },
        validity_rate: 0.0,
        rounds_mean: 0.0,
        rounds_max: 0,
    }
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Outcome12 {
    run_checkpointed(cfg, None)
}

/// [`run`] with optional checkpoint/resume: completed trials found in the
/// store are replayed instead of re-executed, and fresh ones are appended,
/// so a killed sweep rerun with the same configuration and checkpoint path
/// finishes the remaining work and emits identical rows.
pub fn run_checkpointed(cfg: &Config, checkpoint: Option<&Checkpoint>) -> Outcome12 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for slot in workloads(&cfg.sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        rows.push(error_row(name, drop_p, crash_p, &err));
                    }
                }
            }
            Ok(w) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        let spec = FaultSpec::none()
                            .with_drop(drop_p)
                            .with_crash(crash_p, w.crash_window());
                        let plan = TrialPlan::new(cfg.trials, cfg.master_seed);
                        let scope = scope("e12", cfg, w.name(), drop_p, crash_p);
                        let tspec = TrialSpec::new()
                            .isolated()
                            .checkpointed(checkpoint.map(|c| (c, scope.as_str())));
                        let outcomes = plan.execute(tspec, |trial, _| {
                            let faults = FaultPlan::sample(w.graph(), &spec, trial.seed);
                            w.measure(trial.seed, &faults, None)
                        });
                        rows.push(fold_row(
                            w.name(),
                            drop_p,
                            crash_p,
                            cfg.trials,
                            outcomes,
                            &mut metrics,
                        ));
                    }
                }
            }
        }
    }
    Outcome12 { rows, metrics }
}

/// [`run`] with an optional trace sink: each trial's engine run emits its
/// per-round events (live counts, crashes, fault-plane drops and delays)
/// into `sink`, with trial numbers unique across the whole grid (grid points
/// are visited in workload-major, drop-then-crash order and each consumes
/// `cfg.trials` trial numbers). Tracing runs without checkpoint support and
/// without panic isolation — it is an observability mode, not a production
/// sweep mode.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Outcome12 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut base = 0u64;
    for slot in workloads(&cfg.sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        rows.push(error_row(name, drop_p, crash_p, &err));
                    }
                }
            }
            Ok(w) => {
                for &drop_p in &cfg.drop_ps {
                    for &crash_p in &cfg.crash_ps {
                        let spec = FaultSpec::none()
                            .with_drop(drop_p)
                            .with_crash(crash_p, w.crash_window());
                        let plan = TrialPlan::new(cfg.trials, cfg.master_seed);
                        let tspec = TrialSpec::new()
                            .traced(sink.as_deref_mut())
                            .trace_base(base);
                        let outcomes = plan.execute(tspec, |trial, trace| {
                            let faults = FaultPlan::sample(w.graph(), &spec, trial.seed);
                            w.measure(trial.seed, &faults, trace)
                        });
                        base += cfg.trials;
                        rows.push(fold_row(
                            w.name(),
                            drop_p,
                            crash_p,
                            cfg.trials,
                            outcomes,
                            &mut metrics,
                        ));
                    }
                }
            }
        }
    }
    Outcome12 { rows, metrics }
}

/// The fabric view of the sweep (see [`crate::fabric`]): one
/// [`SweepPoint`] per grid cell in the exact serial fold order, with failed
/// workload slots contributing zero-trial points so the grid shape (and the
/// error rows) survive the round trip.
pub struct FabricSweep {
    cfg: Config,
    slots: Vec<WorkloadSlot>,
    points: Vec<SweepPoint>,
}

/// Build the fabric view of `cfg`'s sweep.
pub fn fabric_sweep(cfg: &Config) -> FabricSweep {
    let slots = workloads(&cfg.sizes(), GRAPH_SEED);
    let mut points = Vec::new();
    for slot in &slots {
        let (name, trials) = match slot {
            Ok(w) => (w.name(), cfg.trials),
            Err((name, _)) => (*name, 0),
        };
        for &drop_p in &cfg.drop_ps {
            for &crash_p in &cfg.crash_ps {
                points.push(SweepPoint {
                    scope: scope("e12", cfg, name, drop_p, crash_p),
                    trials,
                });
            }
        }
    }
    FabricSweep {
        cfg: cfg.clone(),
        slots,
        points,
    }
}

impl Sweep for FabricSweep {
    fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    fn run_unit(&self, point: usize, index: u64) -> Value {
        let pps = self.cfg.drop_ps.len() * self.cfg.crash_ps.len();
        let drop_p = self.cfg.drop_ps[(point % pps) / self.cfg.crash_ps.len()];
        let crash_p = self.cfg.crash_ps[point % self.cfg.crash_ps.len()];
        let w = self.slots[point / pps]
            .as_ref()
            .expect("zero-trial error points receive no units");
        let seed = TrialPlan::new(self.cfg.trials, self.cfg.master_seed).seed(index);
        let spec = FaultSpec::none()
            .with_drop(drop_p)
            .with_crash(crash_p, w.crash_window());
        run_unit_isolated(|| {
            let faults = FaultPlan::sample(w.graph(), &spec, seed);
            w.measure(seed, &faults, None)
        })
    }
}

impl FabricSweep {
    /// Fold merged per-point unit values (grouped by
    /// [`crate::fabric::UnitMap::group`]) back into the same [`Outcome12`]
    /// a serial [`run`] produces — byte-identical once serialized.
    pub fn fold_units(&self, per_point: Vec<Vec<Value>>) -> Outcome12 {
        let mut rows = Vec::new();
        let mut metrics = MetricsRegistry::new();
        let mut groups = per_point.into_iter();
        for slot in &self.slots {
            for &drop_p in &self.cfg.drop_ps {
                for &crash_p in &self.cfg.crash_ps {
                    let values = groups.next().expect("one group per grid point");
                    match slot {
                        Err((name, err)) => {
                            rows.push(error_row(name, drop_p, crash_p, err));
                        }
                        Ok(w) => {
                            let outcomes = values
                                .iter()
                                .map(|v| decode_unit(v).expect("fabric journal record shape"))
                                .collect();
                            rows.push(fold_row(
                                w.name(),
                                drop_p,
                                crash_p,
                                self.cfg.trials,
                                outcomes,
                                &mut metrics,
                            ));
                        }
                    }
                }
            }
        }
        Outcome12 { rows, metrics }
    }
}

/// Render the EXPERIMENTS.md table.
pub fn table(out: &Outcome12) -> Table {
    let mut t = Table::new(
        "E12: validity and rounds under message drops and crash-stop nodes".to_string(),
        &[
            "workload", "drop", "crash", "halted", "crashed", "cut", "panics", "validity", "rounds",
        ],
    );
    for r in &out.rows {
        let (validity, rounds) = match &r.error {
            Some(_) => ("error".to_string(), "-".to_string()),
            None => (
                format!("{:.3}", r.validity_rate),
                format!("{:.1}", r.rounds_mean),
            ),
        };
        t.push(vec![
            r.workload.to_string(),
            format!("{:.2}", r.drop_p),
            format!("{:.2}", r.crash_p),
            r.outcomes.halted.to_string(),
            r.outcomes.crashed.to_string(),
            r.outcomes.cut.to_string(),
            r.panicked.to_string(),
            validity,
            rounds,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::NAMES;

    fn tiny() -> Config {
        Config {
            tree_n: 80,
            sinkless_n: 60,
            mis_n: 60,
            drop_ps: vec![0.0, 0.5],
            crash_ps: vec![0.0, 0.2],
            trials: 2,
            master_seed: 7,
        }
    }

    #[test]
    fn faults_degrade_validity_but_never_crash_the_sweep() {
        let out = run(&tiny());
        assert_eq!(out.rows.len(), NAMES.len() * 2 * 2);
        for r in &out.rows {
            assert_eq!(r.panicked, 0, "{}: no workload should panic", r.workload);
            assert!(
                (0.0..=1.0).contains(&r.validity_rate),
                "{}: rate {}",
                r.workload,
                r.validity_rate
            );
        }
        // Every catalog entry's fault-free baseline dominates its heavily-
        // faulted point.
        for w in NAMES {
            let rate = |d: f64, c: f64| {
                out.get(w, d, c)
                    .unwrap_or_else(|| panic!("{w}: grid point ({d}, {c}) missing"))
                    .validity_rate
            };
            let clean = rate(0.0, 0.0);
            let faulty = rate(0.5, 0.2);
            assert!(
                clean > faulty,
                "{w}: clean {clean} should beat faulty {faulty}"
            );
            assert!(clean > 0.8, "{w}: clean runs should mostly validate");
        }
        // Crashes are actually reported at the crashy grid points.
        assert!(out
            .rows
            .iter()
            .filter(|r| r.crash_p > 0.0)
            .any(|r| r.outcomes.crashed > 0));
        assert!(!table(&out).is_empty());
    }

    #[test]
    fn sweep_is_deterministic_and_checkpoint_replay_matches() {
        let mut path = std::env::temp_dir();
        path.push(format!("lcl-e12-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cfg = tiny();
        let a = run(&cfg);
        // First checkpointed run records every trial; the second replays
        // them all from the file without recomputation. All three must
        // agree field-for-field.
        let b = {
            let ckpt = Checkpoint::open(&path).expect("open checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        let c = {
            let ckpt = Checkpoint::open(&path).expect("reopen checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        for (x, y) in a.rows.iter().zip(b.rows.iter().zip(&c.rows)) {
            for y in [y.0, y.1] {
                assert_eq!(x.workload, y.workload);
                assert_eq!(x.outcomes, y.outcomes);
                assert_eq!(x.validity_rate, y.validity_rate);
                assert_eq!(x.rounds_mean, y.rounds_mean);
                assert_eq!(x.rounds_max, y.rounds_max);
                assert_eq!(x.panic_messages, y.panic_messages);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_sweep_matches_untraced_rows() {
        use local_obs::MemorySink;

        let cfg = tiny();
        let plain = run(&cfg);
        let mut sink = MemorySink::new();
        let traced = run_traced(&cfg, Some(&mut sink));
        assert_eq!(
            serde_json::to_string(&plain.rows).unwrap(),
            serde_json::to_string(&traced.rows).unwrap(),
            "tracing must not change the measured rows"
        );
        let events = sink.into_events();
        // Every grid point contributed cfg.trials engine runs, each with a
        // run_start/run_end pair, under globally unique trial numbers.
        let grid = (NAMES.len() * 2 * 2) as u64;
        let starts = events
            .iter()
            .filter(|e| e.data.tag() == "run_start")
            .count();
        assert_eq!(starts as u64, grid * cfg.trials);
        let trials: std::collections::HashSet<u64> = events.iter().map(|e| e.trial).collect();
        assert_eq!(trials, (0..grid * cfg.trials).collect());
        // Crashy grid points actually show crashes in the round events.
        assert!(events
            .iter()
            .any(|e| matches!(e.data, local_obs::EventData::Round { crashes, .. } if crashes > 0)));
    }

    #[test]
    fn fabric_units_fold_identically_to_serial() {
        use crate::fabric::UnitMap;
        let cfg = tiny();
        let serial = run(&cfg);
        let sweep = fabric_sweep(&cfg);
        let map = UnitMap::new(sweep.points());
        // Reverse unit order: execution order must not matter.
        let mut values = vec![Value::Null; map.total() as usize];
        for unit in (0..map.total()).rev() {
            let (point, index) = map.locate(unit);
            values[unit as usize] = sweep.run_unit(point, index);
        }
        let fabric = sweep.fold_units(map.group(values));
        assert_eq!(
            serde_json::to_string(&serial.rows).unwrap(),
            serde_json::to_string(&fabric.rows).unwrap(),
            "fabric decomposition must be invisible in the folded rows"
        );
    }

    #[test]
    fn infeasible_generator_parameters_become_error_rows() {
        // n·d odd for the 3-regular generators: both the sinkless workload
        // and the edge-coloring base graph become infeasible.
        let cfg = Config {
            sinkless_n: 61,
            ..tiny()
        };
        let out = run(&cfg);
        assert_eq!(
            out.rows.len(),
            NAMES.len() * 2 * 2,
            "error rows keep the grid shape"
        );
        let infeasible = ["sinkless", "edge-coloring"];
        for r in out.rows.iter().filter(|r| infeasible.contains(&r.workload)) {
            let err = r.error.as_deref().expect("cubic rows carry the error");
            assert!(err.contains("infeasible"), "typed error surfaced: {err}");
            assert_eq!(r.trials, 0);
            assert_eq!(r.outcomes.halted, 0);
        }
        for r in out
            .rows
            .iter()
            .filter(|r| !infeasible.contains(&r.workload))
        {
            assert!(
                r.error.is_none(),
                "{}: other workloads still run",
                r.workload
            );
            assert!(r.outcomes.halted > 0);
        }
        // The error reaches the JSON report and the text table.
        let json = serde_json::to_string(&out.rows).expect("rows serialize");
        assert!(json.contains("infeasible"));
        assert!(format!("{}", table(&out)).contains("error"));
    }
}
