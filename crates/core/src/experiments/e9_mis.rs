//! E9 — the MIS landscape from the paper's introduction.
//!
//! Luby's RandLOCAL MIS (`Θ(log n)`), the deterministic color-class MIS
//! (`O(Δ² + log* n)` — flat in `n`), and the Ghaffari-style shattering MIS
//! (`O(log Δ)` pre-shattering + deterministic finish on `poly log`-size
//! components). The shape to reproduce: for fixed Δ, Luby grows with
//! `log n` while the other two stay flat; and the shattering algorithm's
//! *undecided residue* stays polylogarithmic.

use crate::fit::{best_model, GrowthModel};
use crate::report::Table;
use crate::shatter::shatter_profile;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::mis::ghaffari::{ghaffari_preshatter, GhaffariConfig};
use local_algorithms::mis::{det_mis, ghaffari_mis, luby_mis};
use local_graphs::gen;
use local_lcl::problems::Mis;
use local_lcl::{Labeling, LclProblem};
use local_model::IdAssignment;
use local_obs::TraceSink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Degree of the random regular workload.
    pub delta: usize,
    /// Graph sizes.
    pub ns: Vec<usize>,
    /// Seeds per randomized point.
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            delta: 4,
            ns: vec![1 << 8, 1 << 10, 1 << 12],
            seeds: 2,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            delta: 4,
            ns: vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16],
            seeds: 3,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Graph size.
    pub n: usize,
    /// Luby rounds (mean).
    pub luby: f64,
    /// Deterministic color-class MIS rounds.
    pub det: f64,
    /// Ghaffari-with-shattering rounds (mean).
    pub ghaffari: f64,
    /// Largest undecided component after pre-shattering (max over seeds).
    pub residue_largest: usize,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Measured points.
    pub rows: Vec<Row>,
    /// Best-fit growth of the Luby series.
    pub luby_fit: GrowthModel,
    /// Best-fit growth of the deterministic series.
    pub det_fit: GrowthModel,
}

/// Run the sweep; every MIS is validated.
pub fn run(cfg: &Config) -> Outcome {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each trial runs inside an
/// `e9_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Outcome {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    let mut luby_series = Vec::new();
    let mut det_series = Vec::new();
    for &n in &cfg.ns {
        let mut rng = StdRng::seed_from_u64(0xE9 ^ (n as u64) << 5);
        let g = gen::random_regular(n, cfg.delta, &mut rng).expect("feasible parameters");
        let assert_mis = |in_set: &[bool]| {
            let labels: Labeling<bool> = in_set.to_vec().into();
            Mis::new()
                .validate(&g, &labels)
                .expect("valid MIS required");
        };

        let plan = TrialPlan::new(cfg.seeds, 0xE9 ^ (n as u64));
        let spec = TrialSpec::new()
            .traced(sink.as_deref_mut())
            .trace_base(trace_base);
        trace_base += plan.trials();
        let per_trial: Vec<_> = plan
            .execute(spec, |t, trace| {
                let _span = trace.map(|tr| tr.span("e9_trial"));
                let l = luby_mis(&g, t.seed, 10_000).expect("Luby finishes whp");
                assert_mis(&l.in_set);

                let gh = ghaffari_mis(&g, t.seed, GhaffariConfig::default()).expect("finishes");
                assert_mis(&gh.in_set);

                let pre = ghaffari_preshatter(&g, t.seed, GhaffariConfig::default())
                    .expect("fixed budget");
                let undecided: Vec<bool> = pre.status.iter().map(Option::is_none).collect();
                let residue = shatter_profile(&g, &undecided).largest();
                (f64::from(l.rounds), f64::from(gh.rounds), residue)
            })
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        let luby_sum: f64 = per_trial.iter().map(|p| p.0).sum();
        let ghaffari_sum: f64 = per_trial.iter().map(|p| p.1).sum();
        let residue = per_trial.iter().map(|p| p.2).max().unwrap_or(0);

        let det = det_mis(&g, &IdAssignment::Shuffled { seed: 11 });
        assert_mis(&det.in_set);

        let luby = luby_sum / cfg.seeds as f64;
        let ghaffari = ghaffari_sum / cfg.seeds as f64;
        luby_series.push((n as f64, luby));
        det_series.push((n as f64, f64::from(det.rounds)));
        rows.push(Row {
            n,
            luby,
            det: f64::from(det.rounds),
            ghaffari,
            residue_largest: residue,
        });
    }
    Outcome {
        luby_fit: best_model(&luby_series).model,
        det_fit: best_model(&det_series).model,
        rows,
    }
}

/// Render the EXPERIMENTS.md table.
pub fn table(out: &Outcome, delta: usize) -> Table {
    let mut t = Table::new(
        format!("E9: MIS on random {delta}-regular graphs — Luby vs deterministic vs shattering"),
        &["n", "Luby", "Det (Δ²+log*)", "Ghaffari", "residue comp"],
    );
    for r in &out.rows {
        t.push(vec![
            r.n.to_string(),
            format!("{:.1}", r.luby),
            format!("{:.1}", r.det),
            format!("{:.1}", r.ghaffari),
            r.residue_largest.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_is_flat_and_luby_grows() {
        let out = run(&Config {
            delta: 4,
            ns: vec![1 << 8, 1 << 12],
            seeds: 1,
        });
        assert_eq!(out.rows.len(), 2);
        let (small, large) = (&out.rows[0], &out.rows[1]);
        // 16x the vertices: deterministic rounds move by at most a couple
        // (log* + fixed palette), Luby's tend upward.
        assert!(
            large.det - small.det <= 4.0,
            "{} -> {}",
            small.det,
            large.det
        );
        assert!(large.residue_largest <= 128);
        assert!(!table(&out, 4).is_empty());
    }
}
