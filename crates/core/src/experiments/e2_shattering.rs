//! E2 — the shattering lemma of Theorem 10's analysis.
//!
//! After Phase 1 (ColorBidding + Filtering), the paper proves that w.h.p.
//! every connected component of *bad* vertices has size ≤ Δ⁴·log n. We run
//! Phase 1 alone over an `n` sweep on complete (Δ−1)-ary trees — the
//! all-internal-degrees-equal-Δ family where filtering actually fires —
//! and record the measured component profile next to the bound.

use crate::report::Table;
use crate::shatter::shatter_profile;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::tree::theorem10::theorem10_phase1_traced;
use local_algorithms::tree::Theorem10Config;
use local_graphs::gen;
use local_obs::{EventData, PowHistogram, TraceSink};
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Maximum degree Δ.
    pub delta: usize,
    /// Tree sizes.
    pub ns: Vec<usize>,
    /// Seeds per point (the max over seeds is reported — shattering is a
    /// w.h.p. statement).
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            delta: 16,
            ns: vec![1 << 10, 1 << 12, 1 << 14],
            seeds: 3,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            delta: 16,
            ns: vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18],
            seeds: 5,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Tree size.
    pub n: usize,
    /// Bad vertices after Phase 1 (max over seeds).
    pub bad_max: usize,
    /// Largest bad component (max over seeds).
    pub largest_component: usize,
    /// The analysis bound `Δ⁴·log₂ n`.
    pub bound: f64,
    /// Whether every seed stayed within the bound.
    pub within_bound: bool,
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: every trial's Phase-1 engine run
/// emits per-round events (live vertices, message volume), and each trial
/// additionally records a `shattered_component_size` histogram of the bad
/// components it produced. Trials are stamped with a global sequence number
/// `point · seeds + seed` so the combined stream stays unambiguous across
/// sweep points.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let mut rows = Vec::new();
    for (point, &n) in cfg.ns.iter().enumerate() {
        // The hard family (matching E1): complete (Δ−1)-ary trees, whose
        // internal vertices all have degree exactly Δ.
        let g = gen::complete_dary_tree(n, cfg.delta);
        let plan = TrialPlan::new(cfg.seeds, 0xE2 ^ (n as u64));
        let base = point as u64 * cfg.seeds;
        let spec = TrialSpec::new()
            .traced(sink.as_deref_mut())
            .trace_base(base);
        let per_trial: Vec<_> = plan
            .execute(spec, |t, trace| {
                let (status, _rounds) = theorem10_phase1_traced(
                    &g,
                    cfg.delta,
                    t.seed,
                    Theorem10Config::default(),
                    trace,
                )
                .expect("phase 1 has a fixed schedule");
                let bad: Vec<bool> = status.iter().map(Option::is_none).collect();
                let profile = shatter_profile(&g, &bad);
                if let Some(tr) = trace {
                    let mut hist = PowHistogram::new();
                    for &size in &profile.component_sizes {
                        hist.record(size as u64);
                    }
                    tr.emit(EventData::Histogram {
                        name: "shattered_component_size".to_string(),
                        hist: Box::new(hist),
                    });
                }
                (profile.undecided, profile.largest())
            })
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        let bad_max = per_trial.iter().map(|p| p.0).max().unwrap_or(0);
        let largest = per_trial.iter().map(|p| p.1).max().unwrap_or(0);
        let bound = (cfg.delta as f64).powi(4) * (g.n() as f64).log2();
        rows.push(Row {
            n: g.n(),
            bad_max,
            largest_component: largest,
            bound,
            within_bound: (largest as f64) <= bound,
        });
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row], delta: usize) -> Table {
    let mut t = Table::new(
        format!("E2: Theorem 10 shattering (Δ = {delta}) — bad components vs the Δ⁴·log n bound"),
        &["n", "bad vertices", "largest comp", "Δ⁴·log₂ n", "within"],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.bad_max.to_string(),
            r.largest_component.to_string(),
            format!("{:.0}", r.bound),
            r.within_bound.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_stay_within_bound() {
        let cfg = Config {
            delta: 16,
            ns: vec![512, 2048],
            seeds: 2,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.within_bound,
                "n = {}: {} > {}",
                r.n, r.largest_component, r.bound
            );
            // Empirically components are far below the bound.
            assert!(r.largest_component <= 100);
        }
        assert_eq!(table(&rows, 16).len(), 2);
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_histograms() {
        use local_obs::MemorySink;
        use serde_json::to_string;

        let cfg = Config {
            delta: 16,
            ns: vec![512, 1024],
            seeds: 2,
        };
        let plain = run(&cfg);
        let mut sink = MemorySink::new();
        let traced = run_traced(&cfg, Some(&mut sink));
        assert_eq!(
            to_string(&plain).unwrap(),
            to_string(&traced).unwrap(),
            "tracing must not change results"
        );
        let events = sink.into_events();
        // One shattered-component histogram per trial, stamped with a
        // globally unique trial number across the two sweep points. (The
        // engine additionally emits messages/halt-round histograms per run,
        // hence the filter by name.)
        let hists: Vec<&local_obs::TraceEvent> = events
            .iter()
            .filter(|e| {
                matches!(&e.data, local_obs::EventData::Histogram { name, .. }
                    if name == "shattered_component_size")
            })
            .collect();
        assert_eq!(hists.len(), 4);
        let trials: std::collections::HashSet<u64> = hists.iter().map(|e| e.trial).collect();
        assert_eq!(trials, (0..4).collect());
        // Engine rounds were traced too.
        assert!(events.iter().any(|e| e.data.tag() == "round"));
        assert!(events
            .iter()
            .any(|e| matches!(&e.data, local_obs::EventData::SpanStart { name } if name == "t10_color_bidding")));
    }
}
