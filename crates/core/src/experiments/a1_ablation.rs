//! A1 — ablation of Theorem 10's schedule constants.
//!
//! The paper's analysis constants (`K = 3·200·e²⁰⁰`, margin `Δ/200`,
//! cap `Δ^0.1`) exist to make Chernoff bounds go through at astronomical Δ;
//! DESIGN.md documents our practical defaults (`K = 3`, margin `Δ/8`, cap
//! `Δ^0.5`). This ablation justifies them: we sweep the growth constant and
//! the palette margin and record how phase-1 length, the bad fraction, and
//! the shattered-component size respond — the defaults sit where phase 1 is
//! `log* Δ`-short *and* the residue stays tiny.

use crate::report::Table;
use crate::shatter::shatter_profile;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use local_algorithms::tree::theorem10::theorem10_phase1;
use local_algorithms::tree::{theorem10_color, Theorem10Config};
use local_graphs::gen;
use local_lcl::problems::VertexColoring;
use local_lcl::LclProblem;
use local_obs::TraceSink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Tree size.
    pub n: usize,
    /// Maximum degree Δ.
    pub delta: usize,
    /// Growth constants `K` to ablate.
    pub growth_ks: Vec<f64>,
    /// Palette margins to ablate.
    pub margins: Vec<f64>,
    /// Seeds per point.
    pub seeds: u64,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            n: 1 << 12,
            delta: 16,
            growth_ks: vec![1.0, 3.0, 10.0],
            margins: vec![1.0 / 32.0, 1.0 / 8.0, 1.0 / 3.0],
            seeds: 2,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            n: 1 << 15,
            delta: 32,
            growth_ks: vec![1.0, 3.0, 10.0, 30.0],
            margins: vec![1.0 / 32.0, 1.0 / 8.0, 1.0 / 3.0],
            seeds: 3,
        }
    }
}

/// One ablation point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Growth constant `K`.
    pub growth_k: f64,
    /// Palette margin fraction.
    pub margin: f64,
    /// Schedule length `t` (phase-1 iterations).
    pub schedule_len: usize,
    /// Mean fraction of vertices left bad by phase 1.
    pub bad_fraction: f64,
    /// Largest bad component observed (max over seeds).
    pub largest_component: usize,
    /// Mean total rounds of the full pipeline.
    pub total_rounds: f64,
}

/// Run the ablation; every full-pipeline coloring is validated.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each trial runs inside an
/// `a1_trial` span (stamped with a globally unique trial number), so the
/// stream records per-trial wall-clock timing.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let mut trace_base = 0u64;
    let mut rows = Vec::new();
    for &growth_k in &cfg.growth_ks {
        for &margin in &cfg.margins {
            let config = Theorem10Config {
                growth_k,
                palette_margin: margin,
                ..Theorem10Config::default()
            };
            let schedule_len = config.schedule(cfg.delta).len();
            let plan = TrialPlan::new(
                cfg.seeds,
                0xA1 ^ (growth_k.to_bits() >> 3) ^ margin.to_bits(),
            );
            let spec = TrialSpec::new()
                .traced(sink.as_deref_mut())
                .trace_base(trace_base);
            trace_base += plan.trials();
            let per_trial: Vec<_> = plan
                .execute(spec, |t, trace| {
                    let _span = trace.map(|tr| tr.span("a1_trial"));
                    let mut rng = StdRng::seed_from_u64(t.seed);
                    let g = gen::random_tree_max_degree(cfg.n, cfg.delta, &mut rng);
                    let (status, _) =
                        theorem10_phase1(&g, cfg.delta, t.seed, config).expect("fixed schedule");
                    let bad: Vec<bool> = status.iter().map(Option::is_none).collect();
                    let profile = shatter_profile(&g, &bad);
                    let full = theorem10_color(&g, cfg.delta, t.seed, config).expect("completes");
                    VertexColoring::new(cfg.delta)
                        .validate(&g, &full.coloring.labels)
                        .expect("every ablation variant must still be correct");
                    (
                        profile.undecided as f64 / cfg.n as f64,
                        profile.largest(),
                        f64::from(full.coloring.rounds),
                    )
                })
                .into_iter()
                .map(TrialOutcome::into_ok)
                .collect();
            let bad_sum: f64 = per_trial.iter().map(|p| p.0).sum();
            let largest = per_trial.iter().map(|p| p.1).max().unwrap_or(0);
            let rounds_sum: f64 = per_trial.iter().map(|p| p.2).sum();
            rows.push(Row {
                growth_k,
                margin,
                schedule_len,
                bad_fraction: bad_sum / cfg.seeds as f64,
                largest_component: largest,
                total_rounds: rounds_sum / cfg.seeds as f64,
            });
        }
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row], n: usize, delta: usize) -> Table {
    let mut t = Table::new(
        format!("A1: Theorem 10 constants ablation (n = {n}, Δ = {delta})"),
        &[
            "K",
            "margin",
            "t (iters)",
            "bad frac",
            "max comp",
            "total rounds",
        ],
    );
    for r in rows {
        t.push(vec![
            format!("{:.0}", r.growth_k),
            format!("1/{:.0}", 1.0 / r.margin),
            r.schedule_len.to_string(),
            format!("{:.4}", r.bad_fraction),
            r.largest_component.to_string(),
            format!("{:.1}", r.total_rounds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_stays_correct_and_shattered() {
        let rows = run(&Config {
            n: 1 << 10,
            delta: 16,
            growth_ks: vec![1.0, 10.0],
            margins: vec![1.0 / 8.0],
            seeds: 1,
        });
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.bad_fraction < 0.5, "phase 1 must color most vertices");
            assert!(r.largest_component < 256);
        }
        // Larger K ⇒ slower growth ⇒ longer schedule.
        assert!(rows[1].schedule_len >= rows[0].schedule_len);
        assert!(!table(&rows, 1 << 10, 16).is_empty());
    }
}
