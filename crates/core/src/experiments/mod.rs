//! The experiment drivers behind EXPERIMENTS.md.
//!
//! The paper is a theory paper with no tables or figures; its "evaluation"
//! is a set of theorems. Each experiment here is the executable face of one
//! theorem (see DESIGN.md §5 for the index):
//!
//! | id | theorem | claim under test |
//! |----|---------|------------------|
//! | E1 | Thms 9/10 + 5 | tree Δ-coloring: Det `Θ(log_Δ n)` vs Rand `O(log_Δ log n + log* n)` |
//! | E2 | Thm 10 analysis | bad components after Phase 1 are `O(Δ⁴ log n)` |
//! | E3 | Thm 11 | constant-Δ algorithm round profile and `S`-component sizes |
//! | E4 | Thm 4 base case | every 0-round sinkless coloring fails with prob ≥ 1/Δ² |
//! | E5 | Thm 4 | failure of truncated sinkless orientation decays with rounds |
//! | E6 | Thm 3 | exhaustive derandomization over a toy instance space |
//! | E7 | Thm 6 | black-box speedup of an `Θ(n)`-round algorithm to `O(log* n)` |
//! | E8 | Thms 1/2 | Linial: palette shrink per round, `O(log* n)` convergence |
//! | E9 | intro survey | MIS: Luby `Θ(log n)` vs Det `O(Δ² + log* n)` vs shattering |
//! | E12 | model robustness | validity/rounds degradation under message drops and crash-stop nodes |
//! | E13 | self-healing | recovery of faulty runs to complete valid labelings |
//! | E14 | adversary | worst-case fault plans found by deterministic tabu search |
//!
//! Every driver returns both typed rows (serde-serializable) and a rendered
//! [`Table`](crate::report::Table); the binaries in `local-bench` print the
//! tables that EXPERIMENTS.md records.
//!
//! The trial-grid sweeps (E12/E13/E14) additionally expose a
//! `fabric_sweep` decomposition — the same grid as a flat
//! [`Sweep`](crate::fabric::Sweep) unit space plus a `fold_units` inverse —
//! which is what `--workers N` shards across the crash-tolerant process
//! fabric ([`crate::fabric`]); the fold is pinned byte-identical to the
//! serial driver by in-process tests in each module.

pub mod a1_ablation;
pub mod e10_indistinguishability;
pub mod e11_dichotomy;
pub mod e12_resilience;
pub mod e13_recovery;
pub mod e14_adversary;
pub mod e1_separation;
pub mod e2_shattering;
pub mod e3_theorem11;
pub mod e4_zero_round;
pub mod e5_truncation;
pub mod e6_derand;
pub mod e7_speedup;
pub mod e8_linial;
pub mod e9_mis;
