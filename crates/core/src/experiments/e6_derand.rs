//! E6 — Theorem 3 on a toy instance space.
//!
//! For `n ∈ {3, 4}` we enumerate the entire space `𝒢(n, Δ)` and execute the
//! theorem's recipe: run randomized priority-MIS with claimed size
//! `N = 2^(n²)`, sample the ID-to-randomness table `φ`, and exhaustively
//! verify the resulting deterministic algorithm. The union bound predicts a
//! random `φ` is good with probability `> 1 − |𝒢|/N`; the number of samples
//! actually needed is the measured column.

use crate::derand::{derandomize_priority_mis, DerandReport};
use crate::report::Table;
use local_obs::{Trace, TraceSink};
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// The `(n, Δ, id_bits)` spaces to derandomize over.
    pub spaces: Vec<(usize, usize, u32)>,
    /// Give up after this many φ samples.
    pub max_tries: u32,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            spaces: vec![(3, 2, 2), (3, 2, 3)],
            max_tries: 64,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            spaces: vec![(3, 2, 2), (3, 2, 3), (4, 3, 3)],
            max_tries: 64,
        }
    }
}

/// One derandomized space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Instance-space vertex count.
    pub n: usize,
    /// Degree cap.
    pub delta: usize,
    /// ID bits.
    pub id_bits: u32,
    /// Exhaustively verified instances.
    pub instances: usize,
    /// The claimed size `N = 2^(n²)`.
    pub claimed_n: u64,
    /// φ samples until success.
    pub phis_tried: u32,
}

impl From<DerandReport> for Row {
    fn from(r: DerandReport) -> Self {
        Row {
            n: r.n,
            delta: r.delta,
            id_bits: r.id_bits,
            instances: r.instances,
            claimed_n: r.claimed_n,
            phis_tried: r.phis_tried,
        }
    }
}

/// Run the sweep.
///
/// # Panics
///
/// Panics if a space exhausts `max_tries` without a good φ — at the
/// configured scales the union bound makes that a parameter bug, not a
/// recoverable condition.
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each `(n, Δ, id bits)` space is
/// derandomized inside an `e6_space` span on trace trial 0, so the stream
/// records per-space wall-clock timing.
pub fn run_traced(cfg: &Config, sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let trace = sink.as_ref().map(|_| Trace::new(0));
    let rows = cfg
        .spaces
        .iter()
        .map(|&(n, delta, id_bits)| {
            let _span = trace.as_ref().map(|t| t.span("e6_space"));
            derandomize_priority_mis(n, delta, id_bits, 0xE6, cfg.max_tries)
                .unwrap_or_else(|e| panic!("E6 ({n}, {delta}, {id_bits}): {e}"))
                .into()
        })
        .collect();
    if let (Some(sink), Some(trace)) = (sink, trace) {
        for event in trace.into_events() {
            sink.record(&event);
        }
        sink.flush();
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E6: Theorem 3 derandomization — Det(n) from Rand(2^(n²)), exhaustively verified",
        &["n", "Δ", "id bits", "instances", "claimed N", "φ tries"],
    );
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.delta.to_string(),
            r.id_bits.to_string(),
            r.instances.to_string(),
            r.claimed_n.to_string(),
            r.phis_tried.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_spaces_derandomize_in_few_tries() {
        let rows = run(&Config::quick());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.phis_tried <= 8,
                "union bound predicts ~1 try, got {}",
                r.phis_tried
            );
            assert!(r.instances > 100);
        }
        assert_eq!(table(&rows).len(), 2);
    }
}
