//! E7 — the Theorem 6 speedup, measured.
//!
//! Greedy-by-ID `(Δ+1)`-coloring takes `Θ(n)` rounds under adversarial IDs;
//! after the black-box transform (short IDs from Linial on `G²`) the same
//! algorithm finishes in `O(poly Δ)` rounds after `O(log* n)` preprocessing.
//! The shape to reproduce: the "before" column grows linearly, the "after"
//! column is flat.

use crate::report::Table;
use crate::speedup::{theorem6_demo, SpeedupReport};
use local_graphs::{analysis, gen};
use local_obs::{Trace, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Path lengths / tree sizes.
    pub ns: Vec<usize>,
    /// Degree cap for the tree workload.
    pub tree_delta: usize,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            ns: vec![256, 1024, 4096],
            tree_delta: 4,
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            ns: vec![256, 1024, 4096, 16384],
            tree_delta: 4,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload family.
    pub family: String,
    /// Size.
    pub n: usize,
    /// Rounds before the transform (adversarial IDs).
    pub before: u32,
    /// ID-shortening preprocessing rounds.
    pub preprocessing: u32,
    /// Rounds of the transformed run.
    pub after: u32,
}

impl Row {
    fn from_report(family: &str, r: &SpeedupReport) -> Self {
        Row {
            family: family.to_owned(),
            n: r.n,
            before: r.slow_rounds,
            preprocessing: r.preprocessing_rounds,
            after: r.fast_rounds,
        }
    }
}

/// Run the sweep (paths with increasing IDs; BFS-ordered random trees).
pub fn run(cfg: &Config) -> Vec<Row> {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each demo instance runs inside an
/// `e7_instance` span on trace trial 0, so the stream records per-instance
/// wall-clock timing.
pub fn run_traced(cfg: &Config, sink: Option<&mut dyn TraceSink>) -> Vec<Row> {
    let trace = sink.as_ref().map(|_| Trace::new(0));
    let mut rows = Vec::new();
    for &n in &cfg.ns {
        let _span = trace.as_ref().map(|t| t.span("e7_instance"));
        let g = gen::path(n);
        let report = theorem6_demo(&g, (0..n as u64).collect());
        rows.push(Row::from_report("path", &report));
    }
    for &n in &cfg.ns {
        let _span = trace.as_ref().map(|t| t.span("e7_instance"));
        let mut rng = StdRng::seed_from_u64(0xE7 ^ (n as u64) << 3);
        let g = gen::random_tree_max_degree(n, cfg.tree_delta, &mut rng);
        let dist = analysis::bfs_distances(&g, 0);
        let mut idx: Vec<usize> = (0..g.n()).collect();
        idx.sort_by_key(|&v| dist[v]);
        let mut ids = vec![0u64; g.n()];
        for (rank, v) in idx.into_iter().enumerate() {
            ids[v] = rank as u64;
        }
        let report = theorem6_demo(&g, ids);
        rows.push(Row::from_report("tree", &report));
    }
    if let (Some(sink), Some(trace)) = (sink, trace) {
        for event in trace.into_events() {
            sink.record(&event);
        }
        sink.flush();
    }
    rows
}

/// Render the EXPERIMENTS.md table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "E7: Theorem 6 speedup — greedy-by-ID coloring before/after ID shortening",
        &["family", "n", "before", "preproc", "after", "after total"],
    );
    for r in rows {
        t.push(vec![
            r.family.clone(),
            r.n.to_string(),
            r.before.to_string(),
            r.preprocessing.to_string(),
            r.after.to_string(),
            (r.preprocessing + r.after).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_speedup_is_dramatic() {
        let rows = run(&Config {
            ns: vec![256, 1024],
            tree_delta: 4,
        });
        let paths: Vec<&Row> = rows.iter().filter(|r| r.family == "path").collect();
        assert_eq!(paths.len(), 2);
        // Before: Θ(n). After: flat.
        assert!(paths[1].before >= 4 * paths[0].before / 2);
        assert!(paths[1].after <= paths[0].after + 8);
        for p in &paths {
            assert!(p.preprocessing + p.after < p.before);
        }
        assert!(!table(&rows).is_empty());
    }
}
