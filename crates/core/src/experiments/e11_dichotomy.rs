//! E11 — Theorem 7's Δ = 2 dichotomy, measured.
//!
//! On paths/cycles every LCL is either `O(log* n)` or `Ω(n)`; there is
//! nothing in between. Two problems, one per side:
//!
//! * **3-coloring** (Cole–Vishkin): measured rounds must be `log*`-flat.
//! * **2-coloring** (parity wave): measured rounds must grow linearly.
//!
//! The table shows the two series side by side; the gap between them is the
//! forbidden middle band of the dichotomy.

use crate::fit::{best_model, GrowthModel};
use crate::report::Table;
use local_algorithms::color::cole_vishkin::cv_color_cycle;
use local_algorithms::color::path_two_color::path_two_coloring;
use local_graphs::gen;
use local_lcl::problems::VertexColoring;
use local_lcl::LclProblem;
use local_model::IdAssignment;
use local_obs::{Trace, TraceSink};
use serde::{Deserialize, Serialize};

/// Sweep configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Path/cycle lengths.
    pub ns: Vec<usize>,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            ns: vec![1 << 6, 1 << 8, 1 << 10, 1 << 12],
        }
    }

    /// The full sweep EXPERIMENTS.md records.
    pub fn full() -> Self {
        Config {
            ns: vec![1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14],
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Instance size.
    pub n: usize,
    /// Cole–Vishkin 3-coloring rounds on the cycle `C_n`.
    pub three_coloring: u32,
    /// Parity-wave 2-coloring rounds on the path `P_n`.
    pub two_coloring: u32,
}

/// The sweep outcome with growth fits.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Measured points.
    pub rows: Vec<Row>,
    /// Best-fit growth of the 3-coloring series.
    pub fast_fit: GrowthModel,
    /// Best-fit growth of the 2-coloring series.
    pub slow_fit: GrowthModel,
}

/// Run the sweep; both colorings are validated at every size.
pub fn run(cfg: &Config) -> Outcome {
    run_traced(cfg, None)
}

/// [`run`] with an optional trace sink: each size is measured inside an
/// `e11_size` span on trace trial 0, so the stream records per-size
/// wall-clock timing.
pub fn run_traced(cfg: &Config, sink: Option<&mut dyn TraceSink>) -> Outcome {
    let trace = sink.as_ref().map(|_| Trace::new(0));
    let mut rows = Vec::new();
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    for &n in &cfg.ns {
        let _span = trace.as_ref().map(|t| t.span("e11_size"));
        let cycle = gen::cycle(n);
        let three = cv_color_cycle(&cycle, &IdAssignment::Sequential);
        VertexColoring::new(3)
            .validate(&cycle, &three.labels)
            .expect("Cole-Vishkin output must be proper");

        let path = gen::path(n);
        let two = path_two_coloring(&path).expect("waves meet on paths");
        VertexColoring::new(2)
            .validate(&path, &two.labels)
            .expect("parity wave output must be proper");

        fast.push((n as f64, f64::from(three.rounds)));
        slow.push((n as f64, f64::from(two.rounds)));
        rows.push(Row {
            n,
            three_coloring: three.rounds,
            two_coloring: two.rounds,
        });
    }
    if let (Some(sink), Some(trace)) = (sink, trace) {
        for event in trace.into_events() {
            sink.record(&event);
        }
        sink.flush();
    }
    Outcome {
        fast_fit: best_model(&fast).model,
        slow_fit: best_model(&slow).model,
        rows,
    }
}

/// Render the EXPERIMENTS.md table.
pub fn table(out: &Outcome) -> Table {
    let mut t = Table::new(
        "E11: the Δ = 2 dichotomy — 3-coloring (log* n) vs 2-coloring (Ω(n))",
        &["n", "3-coloring rounds", "2-coloring rounds"],
    );
    for r in &out.rows {
        t.push(vec![
            r.n.to_string(),
            r.three_coloring.to_string(),
            r.two_coloring.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dichotomy_sides_separate() {
        let out = run(&Config {
            ns: vec![1 << 6, 1 << 8, 1 << 10],
        });
        let (small, large) = (&out.rows[0], &out.rows[2]);
        // Fast side: flat. Slow side: ~16x.
        assert!(large.three_coloring <= small.three_coloring + 2);
        assert!(large.two_coloring >= 8 * small.two_coloring);
        assert_eq!(out.slow_fit, GrowthModel::Linear);
        assert!(!table(&out).is_empty());
    }
}
