//! E14 — adversary: worst-case fault-plan search with graceful degradation.
//!
//! E13 samples fault plans *randomly* and shows the recovery subsystem heals
//! them (its full grid recovers 100% of trials at boundary radius ≤ 1). This
//! experiment asks the complementary question: how much damage can a
//! *searched* plan do under the same fault budget? For each workload-catalog
//! entry ([`crate::workloads`]) × [`Objective`] grid point it runs several
//! restarts of the deterministic tabu search ([`crate::adversary::search`])
//! over [`FaultPlan`] space; every candidate plan is scored by replaying the
//! workload at a **fixed** evaluation seed and attempting recovery
//! ([`Workload::assess`]) — a plan that defeats recovery outright comes back
//! as a scored [`DegradedRun`](local_algorithms::DegradedRun) census instead
//! of an error.
//!
//! Workload sizes are fixed constants — deliberately *not* scaled by
//! `--full` — so a pinned best-found plan replays against the identical
//! graph no matter which mode found it; `quick`/`full` differ only in search
//! effort (iterations, candidates per iteration, restarts). Restart search
//! seeds derive from the master seed through the shared
//! [`TrialPlan`](crate::trials::TrialPlan) stream, so the whole sweep is a
//! pure function of its configuration, per-restart records are integer-plus-
//! string only, and a checkpoint-resumed sweep reproduces the uninterrupted
//! JSON byte-for-byte. [`artifact_json`] renders the replayable artifact the
//! CI adversary-replay gate pins (see `adversary_replay` in `local-bench`).

use crate::adversary::{search, Evaluation, Objective, SearchConfig};
use crate::checkpoint::Checkpoint;
use crate::fabric::{decode_unit, run_unit_isolated, Sweep, SweepPoint};
use crate::report::Table;
use crate::trials::{TrialOutcome, TrialPlan, TrialSpec};
use crate::workloads::{find_row, workloads, Sizes, Workload, WorkloadSlot};
use local_algorithms::RecoveryPolicy;
use local_graphs::GraphError;
use local_model::FaultPlan;
use local_obs::{MetricsRegistry, Trace, TraceSink};
use serde::{Deserialize, Serialize, Value};

/// Vertices in the tree-coloring workload (fixed; see the module docs).
pub const TREE_N: usize = 64;
/// Vertices in the sinkless-orientation and edge-coloring base workloads
/// (fixed, 3-regular).
pub const SINKLESS_N: usize = 48;
/// Vertices in the MIS, ruling-set, and defective-coloring workloads
/// (fixed).
pub const MIS_N: usize = 48;

/// Seed of the workload graph generators.
const GRAPH_SEED: u64 = 0xE14F;
/// The fixed base-run seed every evaluation replays: the fault plan is the
/// *only* variable the search moves, which is what makes a pinned plan's
/// score reproducible.
const EVAL_SEED: u64 = 0xE14D;

/// The fixed catalog sizes of this experiment.
fn sizes() -> Sizes {
    Sizes {
        tree_n: TREE_N,
        sinkless_n: SINKLESS_N,
        mis_n: MIS_N,
    }
}

/// Sweep configuration: search effort only (workload sizes are fixed).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Config {
    /// Tabu-search iterations per restart.
    pub iterations: u64,
    /// Candidate moves proposed per iteration.
    pub candidates: u32,
    /// Tabu tenure (iterations a touched attribute stays banned).
    pub tenure: u32,
    /// Independent search restarts per grid point (each from its own
    /// derived search seed; the best restart wins the row).
    pub restarts: u64,
    /// Maximum vertices a plan may crash.
    pub crash_budget: usize,
    /// Maximum directed edges a plan may hard-drop.
    pub drop_budget: usize,
    /// Master seed the restart search seeds derive from.
    pub master_seed: u64,
    /// Recovery policy the evaluator heals under (same default as E13).
    pub policy: RecoveryPolicy,
}

impl Config {
    /// A laptop-seconds configuration.
    pub fn quick() -> Self {
        Config {
            iterations: 12,
            candidates: 4,
            tenure: 6,
            restarts: 2,
            crash_budget: 4,
            drop_budget: 6,
            master_seed: 0xE14,
            policy: RecoveryPolicy::default(),
        }
    }

    /// The full search EXPERIMENTS.md records and CI pins artifacts from.
    pub fn full() -> Self {
        Config {
            iterations: 40,
            candidates: 6,
            tenure: 8,
            restarts: 4,
            crash_budget: 4,
            drop_budget: 6,
            master_seed: 0xE14,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// One measured grid point: the best plan a workload × objective search
/// found, with its full damage census.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload name (a [`crate::workloads::NAMES`] catalog entry).
    pub workload: &'static str,
    /// Objective name (see [`Objective::name`]).
    pub objective: String,
    /// Search restarts attempted.
    pub restarts: u64,
    /// Restarts that panicked (isolated; excluded from the best pick).
    pub panicked: u64,
    /// The captured panic payloads, in restart order.
    pub panic_messages: Vec<String>,
    /// Set when the workload's graph generator failed (typed error text).
    pub error: Option<String>,
    /// Index of the winning restart (ties go to the lowest index).
    pub best_restart: u64,
    /// The winning restart's search seed — with the config, enough to
    /// replay its whole trajectory.
    pub best_search_seed: u64,
    /// The winning plan's objective score.
    pub best_objective: u64,
    /// Recovery radius the winning plan forced (`max_radius + 1` when it
    /// defeated recovery).
    pub radius: u32,
    /// Whether the winning plan defeated recovery entirely.
    pub degraded: bool,
    /// Budget breaches across the winning plan's recovery attempts.
    pub breaches: u64,
    /// Residual violations of the surviving partial labeling.
    pub violations: u64,
    /// Vertices the winning plan crashed.
    pub crashed: u64,
    /// Vertices the base run's budget cut.
    pub cut: u64,
    /// Moves the winning restart committed.
    pub accepted: u64,
    /// Evaluator calls across *all* restarts of this grid point.
    pub evaluations: u64,
    /// The winning [`FaultPlan`], as its exact JSON.
    pub plan_json: String,
    /// The winning plan's degradation report JSON (`null` when recovery
    /// still succeeded).
    pub report_json: String,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct Outcome14 {
    /// Measured grid points, workload-major in [`Objective::ALL`] order.
    pub rows: Vec<Row>,
    /// The run-wide metric aggregate (`search_*` counters and gauges),
    /// folded from every restart in trial order.
    pub metrics: MetricsRegistry,
}

impl Outcome14 {
    /// The row of one grid point, if measured.
    pub fn get(&self, workload: &str, objective: Objective) -> Option<&Row> {
        find_row(
            &self.rows,
            workload,
            |r| r.workload,
            |r| r.objective == objective.name(),
        )
    }
}

/// What one search restart contributes to its grid point. Integer-plus-
/// string only, so checkpointed records round-trip byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrialResult {
    search_seed: u64,
    objective: u64,
    radius: u32,
    degraded: bool,
    breaches: u64,
    violations: u64,
    crashed: u64,
    cut: u64,
    accepted: u64,
    evaluations: u64,
    plan_json: String,
    report_json: String,
    metrics: MetricsRegistry,
}

/// Re-evaluate a plan against the named fixed workload: the entry point the
/// `adversary_replay` gate uses to re-score a pinned artifact. Returns
/// `None` for an unknown workload name (or one whose generator failed).
pub fn evaluate_plan(
    workload: &str,
    plan: &FaultPlan,
    policy: &RecoveryPolicy,
) -> Option<(Evaluation, String)> {
    workloads(&sizes(), GRAPH_SEED)
        .into_iter()
        .flatten()
        .find(|w| w.name() == workload)
        .map(|w| w.assess(EVAL_SEED, plan, policy, None))
}

/// One tabu-search restart: search, then re-evaluate the best plan once to
/// capture its degradation report. The search itself evaluates untraced —
/// a traced sweep records the `search_iter` trajectory, not every
/// candidate's engine run.
fn restart(
    w: &dyn Workload,
    objective: Objective,
    cfg: &Config,
    search_seed: u64,
    trace: Option<&Trace>,
) -> TrialResult {
    let scfg = SearchConfig {
        iterations: cfg.iterations,
        candidates: cfg.candidates,
        tenure: cfg.tenure,
        crash_budget: cfg.crash_budget,
        drop_budget: cfg.drop_budget,
        crash_window: w.adversary_crash_window(),
        search_seed,
    };
    let set = local_obs::MetricSet::new();
    let out = search(
        w.graph(),
        FaultPlan::none(),
        objective,
        &scfg,
        |p| w.assess(EVAL_SEED, p, &cfg.policy, None).0,
        trace,
        Some(&set),
    );
    let (eval, report_json) = w.assess(EVAL_SEED, &out.best_plan, &cfg.policy, None);
    debug_assert_eq!(out.best_objective, objective.score(&eval));
    let mut metrics = MetricsRegistry::new();
    metrics.absorb(&set);
    TrialResult {
        search_seed,
        objective: objective.score(&eval),
        radius: eval.radius,
        degraded: eval.degraded,
        breaches: eval.breaches,
        violations: eval.violations,
        crashed: eval.crashed,
        cut: eval.cut,
        accepted: out.accepted,
        evaluations: out.evaluations + 1,
        plan_json: serde_json::to_string(&out.best_plan).expect("plan serializes"),
        report_json,
        metrics,
    }
}

/// The checkpoint scope of one grid point (everything a restart depends on
/// besides its index).
fn scope(cfg: &Config, workload: &str, objective: Objective) -> String {
    format!(
        "e14/{workload}/{}/iters={}/cands={}/tenure={}/crash={}/drop={}/radius={}/seed={}",
        objective.name(),
        cfg.iterations,
        cfg.candidates,
        cfg.tenure,
        cfg.crash_budget,
        cfg.drop_budget,
        cfg.policy.max_radius,
        cfg.master_seed
    )
}

/// Fold one grid point's restart outcomes into a [`Row`]: the best restart
/// wins, ties on the lowest index. Every restart's metric registry — not
/// just the winner's — merges into `metrics`, in restart order.
fn fold_row(
    workload: &'static str,
    objective: Objective,
    cfg: &Config,
    outcomes: Vec<TrialOutcome<TrialResult>>,
    metrics: &mut MetricsRegistry,
) -> Row {
    let mut panicked = 0u64;
    let mut panic_messages = Vec::new();
    let mut evaluations = 0u64;
    let mut best: Option<(u64, TrialResult)> = None;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TrialOutcome::Panicked { message } => {
                panicked += 1;
                panic_messages.push(message);
            }
            TrialOutcome::Ok(r) => {
                metrics.merge(&r.metrics);
                evaluations += r.evaluations;
                if best.as_ref().is_none_or(|(_, b)| r.objective > b.objective) {
                    best = Some((i as u64, r));
                }
            }
        }
    }
    let (best_restart, b) = best.unwrap_or((
        0,
        TrialResult {
            search_seed: 0,
            objective: 0,
            radius: 0,
            degraded: false,
            breaches: 0,
            violations: 0,
            crashed: 0,
            cut: 0,
            accepted: 0,
            evaluations: 0,
            plan_json: String::new(),
            report_json: "null".to_string(),
            metrics: MetricsRegistry::new(),
        },
    ));
    Row {
        workload,
        objective: objective.name().to_string(),
        restarts: cfg.restarts,
        panicked,
        panic_messages,
        error: None,
        best_restart,
        best_search_seed: b.search_seed,
        best_objective: b.objective,
        radius: b.radius,
        degraded: b.degraded,
        breaches: b.breaches,
        violations: b.violations,
        crashed: b.crashed,
        cut: b.cut,
        accepted: b.accepted,
        evaluations,
        plan_json: b.plan_json,
        report_json: b.report_json,
    }
}

/// A grid point whose workload failed to construct.
fn error_row(workload: &'static str, objective: Objective, err: &GraphError) -> Row {
    Row {
        workload,
        objective: objective.name().to_string(),
        restarts: 0,
        panicked: 0,
        panic_messages: Vec::new(),
        error: Some(err.to_string()),
        best_restart: 0,
        best_search_seed: 0,
        best_objective: 0,
        radius: 0,
        degraded: false,
        breaches: 0,
        violations: 0,
        crashed: 0,
        cut: 0,
        accepted: 0,
        evaluations: 0,
        plan_json: String::new(),
        report_json: "null".to_string(),
    }
}

/// Run the sweep.
pub fn run(cfg: &Config) -> Outcome14 {
    run_checkpointed(cfg, None)
}

/// [`run`] with optional checkpoint/resume (see the module docs of
/// [`crate::checkpoint`]).
pub fn run_checkpointed(cfg: &Config, checkpoint: Option<&Checkpoint>) -> Outcome14 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    for slot in workloads(&sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for objective in Objective::ALL {
                    rows.push(error_row(name, objective, &err));
                }
            }
            Ok(w) => {
                for objective in Objective::ALL {
                    let plan = TrialPlan::new(cfg.restarts, cfg.master_seed);
                    let scope = scope(cfg, w.name(), objective);
                    let tspec = TrialSpec::new()
                        .isolated()
                        .checkpointed(checkpoint.map(|c| (c, scope.as_str())));
                    let outcomes = plan.execute(tspec, |trial, _| {
                        restart(w.as_ref(), objective, cfg, trial.seed, None)
                    });
                    rows.push(fold_row(w.name(), objective, cfg, outcomes, &mut metrics));
                }
            }
        }
    }
    Outcome14 { rows, metrics }
}

/// [`run`] with an optional trace sink: every restart emits one
/// `search_iter` event per search iteration (committed move, committed
/// score, running best). Restart numbers are unique across the whole grid.
/// Tracing runs without checkpoint support and without panic isolation — it
/// is an observability mode, not a production sweep mode.
pub fn run_traced(cfg: &Config, mut sink: Option<&mut dyn TraceSink>) -> Outcome14 {
    let mut rows = Vec::new();
    let mut metrics = MetricsRegistry::new();
    let mut base = 0u64;
    for slot in workloads(&sizes(), GRAPH_SEED) {
        match slot {
            Err((name, err)) => {
                for objective in Objective::ALL {
                    rows.push(error_row(name, objective, &err));
                }
            }
            Ok(w) => {
                for objective in Objective::ALL {
                    let plan = TrialPlan::new(cfg.restarts, cfg.master_seed);
                    let tspec = TrialSpec::new()
                        .traced(sink.as_deref_mut())
                        .trace_base(base);
                    let outcomes = plan.execute(tspec, |trial, trace| {
                        restart(w.as_ref(), objective, cfg, trial.seed, trace)
                    });
                    base += cfg.restarts;
                    rows.push(fold_row(w.name(), objective, cfg, outcomes, &mut metrics));
                }
            }
        }
    }
    Outcome14 { rows, metrics }
}

/// The fabric view of the sweep (see [`crate::fabric`]): one
/// [`SweepPoint`] per workload × objective grid cell in the exact serial
/// fold order, with failed workload slots contributing zero-trial points so
/// the grid shape (and the error rows) survive the round trip.
pub struct FabricSweep {
    cfg: Config,
    slots: Vec<WorkloadSlot>,
    points: Vec<SweepPoint>,
}

/// Build the fabric view of `cfg`'s sweep.
pub fn fabric_sweep(cfg: &Config) -> FabricSweep {
    let slots = workloads(&sizes(), GRAPH_SEED);
    let mut points = Vec::new();
    for slot in &slots {
        let (name, trials) = match slot {
            Ok(w) => (w.name(), cfg.restarts),
            Err((name, _)) => (*name, 0),
        };
        for objective in Objective::ALL {
            points.push(SweepPoint {
                scope: scope(cfg, name, objective),
                trials,
            });
        }
    }
    FabricSweep {
        cfg: cfg.clone(),
        slots,
        points,
    }
}

impl Sweep for FabricSweep {
    fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    fn run_unit(&self, point: usize, index: u64) -> Value {
        let pps = Objective::ALL.len();
        let objective = Objective::ALL[point % pps];
        let w = self.slots[point / pps]
            .as_ref()
            .expect("zero-trial error points receive no units");
        let seed = TrialPlan::new(self.cfg.restarts, self.cfg.master_seed).seed(index);
        run_unit_isolated(|| restart(w.as_ref(), objective, &self.cfg, seed, None))
    }
}

impl FabricSweep {
    /// Fold merged per-point unit values (grouped by
    /// [`crate::fabric::UnitMap::group`]) back into the same [`Outcome14`]
    /// a serial [`run`] produces — byte-identical once serialized.
    pub fn fold_units(&self, per_point: Vec<Vec<Value>>) -> Outcome14 {
        let mut rows = Vec::new();
        let mut metrics = MetricsRegistry::new();
        let mut groups = per_point.into_iter();
        for slot in &self.slots {
            for objective in Objective::ALL {
                let values = groups.next().expect("one group per grid point");
                match slot {
                    Err((name, err)) => rows.push(error_row(name, objective, err)),
                    Ok(w) => {
                        let outcomes = values
                            .iter()
                            .map(|v| decode_unit(v).expect("fabric journal record shape"))
                            .collect();
                        rows.push(fold_row(
                            w.name(),
                            objective,
                            &self.cfg,
                            outcomes,
                            &mut metrics,
                        ));
                    }
                }
            }
        }
        Outcome14 { rows, metrics }
    }
}

/// Render one row's pinned replay artifact: the best-found plan, its seed
/// lineage, and its damage census, in one self-contained JSON object. The
/// CI replay gate re-evaluates the embedded plan and asserts the re-rendered
/// artifact is byte-identical.
pub fn artifact_json(cfg: &Config, row: &Row) -> String {
    let plan: serde::Value = serde_json::from_str(&row.plan_json).unwrap_or(serde::Value::Null);
    let report: serde::Value = serde_json::from_str(&row.report_json).unwrap_or(serde::Value::Null);
    let eval = Evaluation {
        radius: row.radius,
        degraded: row.degraded,
        breaches: row.breaches,
        violations: row.violations,
        crashed: row.crashed,
        cut: row.cut,
    };
    let value = serde::Value::Object(vec![
        (
            "experiment".to_string(),
            serde::Value::String("E14".to_string()),
        ),
        (
            "workload".to_string(),
            serde::Value::String(row.workload.to_string()),
        ),
        (
            "objective".to_string(),
            serde::Value::String(row.objective.clone()),
        ),
        ("eval_seed".to_string(), serde::Value::U64(EVAL_SEED)),
        (
            "search".to_string(),
            serde::Value::Object(vec![
                ("iterations".to_string(), serde::Value::U64(cfg.iterations)),
                (
                    "candidates".to_string(),
                    serde::Value::U64(u64::from(cfg.candidates)),
                ),
                (
                    "tenure".to_string(),
                    serde::Value::U64(u64::from(cfg.tenure)),
                ),
                (
                    "crash_budget".to_string(),
                    serde::Value::U64(cfg.crash_budget as u64),
                ),
                (
                    "drop_budget".to_string(),
                    serde::Value::U64(cfg.drop_budget as u64),
                ),
                ("restart".to_string(), serde::Value::U64(row.best_restart)),
                (
                    "search_seed".to_string(),
                    serde::Value::U64(row.best_search_seed),
                ),
            ]),
        ),
        ("policy".to_string(), cfg.policy.to_value()),
        ("score".to_string(), serde::Value::U64(row.best_objective)),
        ("evaluation".to_string(), eval.to_value()),
        ("plan".to_string(), plan),
        ("report".to_string(), report),
    ]);
    serde_json::to_string(&value).expect("artifact serializes")
}

/// Render the EXPERIMENTS.md table.
pub fn table(out: &Outcome14) -> Table {
    let mut t = Table::new(
        "E14: worst-case fault plans found by adversary search".to_string(),
        &[
            "workload",
            "objective",
            "score",
            "radius",
            "degraded",
            "breach",
            "viol",
            "crash+cut",
            "accepted",
            "evals",
        ],
    );
    for r in &out.rows {
        let (score, radius) = match &r.error {
            Some(_) => ("error".to_string(), "-".to_string()),
            None => (r.best_objective.to_string(), r.radius.to_string()),
        };
        t.push(vec![
            r.workload.to_string(),
            r.objective.clone(),
            score,
            radius,
            if r.degraded { "yes" } else { "no" }.to_string(),
            r.breaches.to_string(),
            r.violations.to_string(),
            format!("{}+{}", r.crashed, r.cut),
            r.accepted.to_string(),
            r.evaluations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::NAMES;

    fn tiny() -> Config {
        Config {
            iterations: 4,
            candidates: 3,
            tenure: 3,
            restarts: 1,
            crash_budget: 3,
            drop_budget: 4,
            master_seed: 7,
            policy: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn grid_is_complete_and_budgets_hold() {
        let out = run(&tiny());
        assert_eq!(out.rows.len(), NAMES.len() * Objective::ALL.len());
        for r in &out.rows {
            assert!(r.error.is_none(), "{}: {:?}", r.workload, r.error);
            assert_eq!(
                r.panicked, 0,
                "{}/{}: no restart may panic",
                r.workload, r.objective
            );
            assert!(r.evaluations > 0);
            let plan: FaultPlan = serde_json::from_str(&r.plan_json).expect("plan round-trips");
            assert!(plan.crash_count() <= tiny().crash_budget);
            assert!(plan.dropped_edge_count() <= tiny().drop_budget);
            if r.degraded {
                assert_eq!(r.radius, tiny().policy.max_radius + 1);
                assert!(r.report_json.contains("\"trail\""));
            } else {
                assert_eq!(r.report_json, "null");
            }
        }
        assert!(!table(&out).is_empty());
    }

    #[test]
    fn sweep_is_deterministic_and_checkpoint_replay_matches() {
        let mut path = std::env::temp_dir();
        path.push(format!("lcl-e14-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cfg = tiny();
        let a = run(&cfg);
        let b = {
            let ckpt = Checkpoint::open(&path).expect("open checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        let c = {
            let ckpt = Checkpoint::open(&path).expect("reopen checkpoint");
            run_checkpointed(&cfg, Some(&ckpt))
        };
        let a_json = serde_json::to_string(&a.rows).unwrap();
        assert_eq!(a_json, serde_json::to_string(&b.rows).unwrap());
        assert_eq!(a_json, serde_json::to_string(&c.rows).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_sweep_matches_untraced_and_emits_search_events() {
        use local_obs::{EventData, MemorySink};

        let cfg = tiny();
        let plain = run(&cfg);
        let mut sink = MemorySink::new();
        let traced = run_traced(&cfg, Some(&mut sink));
        assert_eq!(
            serde_json::to_string(&plain.rows).unwrap(),
            serde_json::to_string(&traced.rows).unwrap(),
            "tracing must not change the measured rows"
        );
        let events = sink.into_events();
        let iters = events
            .iter()
            .filter(|e| matches!(&e.data, EventData::SearchIter { .. }))
            .count() as u64;
        // One search_iter per iteration per restart per grid point.
        assert_eq!(
            iters,
            cfg.iterations * cfg.restarts * (NAMES.len() * Objective::ALL.len()) as u64
        );
    }

    #[test]
    fn pinned_artifacts_replay_to_identical_bytes() {
        let cfg = tiny();
        let out = run(&cfg);
        for row in &out.rows {
            let artifact = artifact_json(&cfg, row);
            // Parse → re-render is byte-stable (field order preserved,
            // numbers exact).
            let value: serde::Value = serde_json::from_str(&artifact).unwrap();
            assert_eq!(artifact, serde_json::to_string(&value).unwrap());
            // Re-evaluating the embedded plan reproduces the pinned census.
            let plan: FaultPlan = serde_json::from_str(&row.plan_json).unwrap();
            let (eval, report) =
                evaluate_plan(row.workload, &plan, &cfg.policy).expect("known workload");
            let objective = Objective::from_name(&row.objective).unwrap();
            assert_eq!(objective.score(&eval), row.best_objective);
            assert_eq!(report, row.report_json);
            assert_eq!(
                serde_json::to_string(&eval).unwrap(),
                serde_json::to_string(&Evaluation {
                    radius: row.radius,
                    degraded: row.degraded,
                    breaches: row.breaches,
                    violations: row.violations,
                    crashed: row.crashed,
                    cut: row.cut,
                })
                .unwrap()
            );
        }
    }

    #[test]
    fn fabric_units_fold_identically_to_serial() {
        use crate::fabric::UnitMap;
        let cfg = tiny();
        let serial = run(&cfg);
        let sweep = fabric_sweep(&cfg);
        let map = UnitMap::new(sweep.points());
        // Reverse unit order: execution order must not matter.
        let mut values = vec![Value::Null; map.total() as usize];
        for unit in (0..map.total()).rev() {
            let (point, index) = map.locate(unit);
            values[unit as usize] = sweep.run_unit(point, index);
        }
        let fabric = sweep.fold_units(map.group(values));
        assert_eq!(
            serde_json::to_string(&serial.rows).unwrap(),
            serde_json::to_string(&fabric.rows).unwrap(),
            "fabric decomposition must be invisible in the folded rows"
        );
    }

    #[test]
    fn evaluate_plan_rejects_unknown_workloads() {
        let policy = RecoveryPolicy::default();
        assert!(evaluate_plan("warp-drive", &FaultPlan::none(), &policy).is_none());
        // The trivial plan on a real workload recovers cleanly.
        let (eval, report) = evaluate_plan("mis", &FaultPlan::none(), &policy).unwrap();
        assert!(!eval.degraded);
        assert_eq!(eval.crashed + eval.cut, 0);
        assert_eq!(report, "null");
    }
}
