//! The workload catalog: one first-class registry of every fault-plane
//! workload the experiment drivers sweep, heal, and attack.
//!
//! A *workload* is the quadruple the fault experiments revolve around — a
//! graph generator, a message-passing protocol, an LCL checker, and a
//! recovery finisher. E12 (resilience), E13 (recovery), and E14 (adversary
//! search) all consume the same quadruples through the object-safe
//! [`Workload`] trait; [`workloads`] is the **single** construction point,
//! so adding an entry here automatically enrolls it in all three sweeps,
//! the fabric decomposition, and the CI replay gates.
//!
//! The catalog carries six entries, in this fixed order (legacy first, so
//! the legacy rows of every report keep their exact position and bytes):
//!
//! | name | protocol | checker | finisher |
//! |------|----------|---------|----------|
//! | `tree-coloring` | Theorem 10 Phase-1 ColorBidding | [`VertexColoring`] | [`GreedyColoringFinisher`] |
//! | `sinkless` | [`SinklessRepair`] | [`SinklessOrientation`] | [`SinklessFinisher`] |
//! | `mis` | [`Luby`] | [`Mis`] | [`LubyRestartFinisher`] |
//! | `edge-coloring` | [`RandGreedy`] on the line graph | [`EdgeKColoring`] | [`EdgeGreedyFinisher`] |
//! | `ruling-set` | [`DilatedLuby`] | [`RulingSet`] (radius-k) | [`RulingSetFinisher`] |
//! | `defective-coloring` | [`DefectiveLocalSearch`] | [`DefectiveColoring`] | [`DefectiveGreedyFinisher`] |
//!
//! Each entry answers three questions, one per experiment:
//!
//! * [`Workload::measure`] — run the protocol under a fault plan and score
//!   the surviving partial labeling ([`check_partial`]); E12's trial.
//! * [`Workload::heal`] — run, then hand the partial labeling to the
//!   recovery driver ([`recover_metered`]) with the entry's finisher; E13's
//!   trial.
//! * [`Workload::assess`] — run at a *fixed* evaluation seed and attempt
//!   recovery via [`recover_report`], folding the damage census into the
//!   adversary objective [`Evaluation`]; E14's plan evaluator.
//!
//! Determinism contract: all graphs draw from one [`StdRng`] stream seeded
//! by `graph_seed`, legacy entries first — a config that only *appends*
//! catalog entries reproduces the legacy graphs (and therefore the legacy
//! rows) byte-for-byte.

use crate::adversary::Evaluation;
use local_algorithms::color::defective::DefectiveLocalSearch;
use local_algorithms::color::rand_greedy::RandGreedy;
use local_algorithms::mis::luby::Luby;
use local_algorithms::mis::DilatedLuby;
use local_algorithms::orientation::sinkless::SinklessRepair;
use local_algorithms::tree::theorem10::{
    theorem10_phase1_faulty_metered, theorem10_phase1_faulty_traced, Theorem10Config,
};
use local_algorithms::{
    recover_metered, recover_report, run_sync, DefectiveGreedyFinisher, EdgeGreedyFinisher,
    Finisher, GreedyColoringFinisher, LubyRestartFinisher, RecoveryPolicy, RulingSetFinisher,
    SinklessFinisher, SyncAlgorithm, SyncRun,
};
use local_graphs::analysis::line_graph;
use local_graphs::{gen, Graph, GraphError};
use local_lcl::problems::{
    DefectiveColoring, EdgeKColoring, Mis, Orientation, PortColors, RulingSet, SinklessOrientation,
    VertexColoring,
};
use local_lcl::{check_partial, LclProblem, PartialValidity};
use local_model::{derived_u64, Budget, ExecSpec, FaultPlan, Mode, Outcome};
use local_obs::{MetricSet, MetricsRegistry, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Maximum degree of the tree-coloring workload's tree.
const TREE_DELTA: usize = 16;
/// Degree of the sinkless-orientation (and line-graph base) workloads.
const SINKLESS_DELTA: usize = 3;
/// Phases of the sinkless repair protocol.
const SINKLESS_PHASES: u32 = 20;
/// Degree of the MIS workload.
const MIS_DELTA: usize = 4;
/// Round budget of the MIS sweep runs (E12/E13).
const MIS_SWEEP_BUDGET: u32 = 400;
/// Round budget of the MIS adversary evaluator (E14; tighter, so searched
/// crash schedules stay consequential).
const MIS_ASSESS_BUDGET: u32 = 60;
/// Crash rounds an adversary plan may schedule against MIS: Luby's active
/// prefix (a crash after every node halted changes nothing).
const MIS_ADVERSARY_CRASH_WINDOW: u32 = 12;
/// Palette of the edge-coloring workload (`Δ + 2` on a cubic base graph,
/// so the greedy finisher is never starved by frozen pins).
const EDGE_PALETTE: usize = 5;
/// Round budget of the edge-coloring runs on the line graph.
const EDGE_BUDGET: u32 = 400;
/// Crash rounds an adversary plan may schedule against edge coloring:
/// RandGreedy's active prefix.
const EDGE_ADVERSARY_CRASH_WINDOW: u32 = 12;
/// Ruling distance of the ruling-set workload (`(2, k)`-ruling set).
const RULING_K: u32 = 2;
/// Palette of the defective-coloring workload.
const DEFECTIVE_COLORS: usize = 2;
/// Tolerated monochromatic degree of the defective-coloring workload.
const DEFECTIVE_DEFECT: usize = 1;
/// Stream tag separating [`Workload::heal`]'s restart-finisher seed from
/// every other consumer of the trial seed (E13's historical tag).
const HEAL_FINISHER_STREAM: u64 = 0xE13;
/// Stream tag separating [`Workload::assess`]'s restart-finisher seed from
/// every other consumer of the evaluation seed (E14's historical tag).
const ASSESS_FINISHER_STREAM: u64 = 0xE14;

/// Catalog names, in catalog order (legacy entries first).
pub const NAMES: [&str; 6] = [
    "tree-coloring",
    "sinkless",
    "mis",
    "edge-coloring",
    "ruling-set",
    "defective-coloring",
];

/// Canonicalize a runtime workload name to its `&'static str` catalog
/// entry; `None` for names outside the catalog.
pub fn static_name(name: &str) -> Option<&'static str> {
    NAMES.iter().copied().find(|n| *n == name)
}

/// Shared row lookup behind `Outcome12/13/14::get`: the first row whose
/// workload name equals `workload` and whose experiment-specific key
/// matches.
pub fn find_row<'a, R>(
    rows: &'a [R],
    workload: &str,
    name_of: impl Fn(&R) -> &str,
    key: impl Fn(&R) -> bool,
) -> Option<&'a R> {
    rows.iter().find(|r| name_of(r) == workload && key(r))
}

/// Graph sizes of the catalog's generators. The three new families reuse
/// the legacy sizes (`sinkless_n` for the edge-coloring base graph,
/// `mis_n` for the ruling-set and defective-coloring graphs), so one
/// `Sizes` fully determines the catalog.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Vertices in the tree-coloring workload (Δ = 16 tree).
    pub tree_n: usize,
    /// Vertices in the sinkless-orientation and edge-coloring base graphs
    /// (3-regular).
    pub sinkless_n: usize,
    /// Vertices in the MIS (4-regular), ruling-set, and defective-coloring
    /// (3-regular) graphs.
    pub mis_n: usize,
}

/// What one completed [`Workload::measure`] trial contributes to its grid
/// point (E12's per-trial record).
///
/// Integer-only so checkpointed records round-trip exactly and a resumed
/// sweep reproduces the uninterrupted JSON byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasureRecord {
    /// Vertices that decided an output.
    pub halted: usize,
    /// Vertices silenced by the crash schedule.
    pub crashed: usize,
    /// Vertices still undecided when the budget ran out.
    pub cut: usize,
    /// Vertices whose full view survived and was checked.
    pub checked: usize,
    /// Checked vertices whose view is acceptable.
    pub valid: usize,
    /// Vertices skipped because they or a ball neighbor carry no label.
    pub skipped: usize,
    /// Largest decided round.
    pub max_round: u32,
    /// The trial's engine metrics.
    pub metrics: MetricsRegistry,
}

/// What one completed [`Workload::heal`] trial contributes to its grid
/// point (E13's per-trial record).
///
/// Integer-only (plus strings) so checkpointed records round-trip exactly
/// and a resumed sweep reproduces the uninterrupted JSON byte-for-byte.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealRecord {
    /// Whether recovery produced a complete valid labeling.
    pub recovered: bool,
    /// Boundary-radius escalations the recovery needed (0 = the faulty run
    /// already validated).
    pub attempts: u32,
    /// Damaged-core size.
    pub core: usize,
    /// Residue size (core + dilation).
    pub residue: usize,
    /// Largest decided round of the base run.
    pub base_rounds: u32,
    /// Extra rounds the finisher paid on top of the base run.
    pub extra_rounds: u32,
    /// Vertices of the base run that decided an output.
    pub halted: usize,
    /// Vertices silenced by the crash schedule.
    pub crashed: usize,
    /// Vertices still undecided when the budget ran out.
    pub cut: usize,
    /// The failure message when recovery was defeated.
    pub failure: Option<String>,
    /// The trial's engine + recovery metrics.
    pub metrics: MetricsRegistry,
}

/// One catalog entry, erased behind an object-safe interface: the graph,
/// the fault-plane windows, and the three per-experiment trial semantics.
///
/// Implementations are `Send + Sync` so the parallel trial harness and the
/// sweep fabric can share one boxed entry across worker threads.
pub trait Workload: Send + Sync {
    /// The catalog name (one of [`NAMES`]).
    fn name(&self) -> &'static str;

    /// The graph fault plans are sampled over and the protocol runs on.
    /// For `edge-coloring` this is the *line graph* — faults hit edges of
    /// the base graph, which is exactly the model's message surface.
    fn graph(&self) -> &Graph;

    /// Crash-round window for randomly sampled fault plans (E12/E13).
    fn crash_window(&self) -> u32;

    /// Crash-round window for searched adversary plans (E14); defaults to
    /// [`Workload::crash_window`], tightened where the protocol's active
    /// prefix is much shorter than its sweep budget.
    fn adversary_crash_window(&self) -> u32 {
        self.crash_window()
    }

    /// Run the protocol under `plan` at `seed` and score the surviving
    /// partial labeling: E12's trial.
    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord;

    /// Run the protocol under `plan` at `seed`, then recover the partial
    /// labeling with the entry's finisher under `policy`: E13's trial.
    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord;

    /// Score `plan` for the adversary search: replay at the fixed
    /// evaluation `seed`, attempt recovery, and fold the damage census into
    /// an [`Evaluation`] plus the degradation report JSON (`"null"` when
    /// recovery still succeeded): E14's plan evaluator.
    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String);
}

/// One catalog slot: a built workload, or the name plus the graph-generator
/// error that kept it from building (the sweeps render those as error rows).
pub type WorkloadSlot = Result<Box<dyn Workload>, (&'static str, GraphError)>;

/// Run `algo` on `g` under the fault plan, with the standard sweep
/// plumbing (budget, optional trace, optional meter).
fn faulty_run<A: SyncAlgorithm>(
    g: &Graph,
    algo: &A,
    budget: u32,
    seed: u64,
    plan: &FaultPlan,
    trace: Option<&Trace>,
    set: Option<&MetricSet>,
) -> SyncRun<A::Output> {
    run_sync(
        g,
        Mode::randomized(seed),
        algo,
        &ExecSpec::default()
            .with_budget(Budget::rounds(budget))
            .with_faults(plan)
            .traced(trace)
            .metered(set),
    )
}

/// Partial labels of the vertices that decided.
fn decided_labels<O: Clone>(run: &SyncRun<O>) -> Vec<Option<O>> {
    run.outcomes.iter().map(|o| o.output().cloned()).collect()
}

/// Fold a run and its partial-validity verdict into a [`MeasureRecord`].
fn measure_record<O>(run: &SyncRun<O>, pv: &PartialValidity, set: &MetricSet) -> MeasureRecord {
    let (halted, crashed, cut) = run.counts();
    let mut metrics = MetricsRegistry::new();
    metrics.absorb(set);
    MeasureRecord {
        halted,
        crashed,
        cut,
        checked: pv.checked,
        valid: pv.valid,
        skipped: pv.skipped,
        max_round: run.max_decided_round(),
        metrics,
    }
}

/// Run recovery on one faulty base run and fold the result into a
/// [`HealRecord`]. The caller owns the trial's [`MetricSet`] and absorbs it
/// into the record afterwards — this only feeds the recovery counters.
#[allow(clippy::too_many_arguments)]
fn heal_record<P, F, O>(
    g: &Graph,
    run: &SyncRun<O>,
    partial: &[Option<P::Label>],
    problem: &P,
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
    metrics: Option<&MetricSet>,
) -> HealRecord
where
    P: LclProblem,
    F: Finisher<P>,
{
    let (halted, crashed, cut) = run.counts();
    let base_rounds = run.max_decided_round();
    match recover_metered(problem, g, partial, finisher, policy, trace, metrics) {
        Ok(rec) => HealRecord {
            recovered: true,
            attempts: rec.attempts,
            core: rec.core_size,
            residue: rec.residue_size,
            base_rounds,
            extra_rounds: rec.extra_rounds,
            halted,
            crashed,
            cut,
            failure: None,
            metrics: MetricsRegistry::new(),
        },
        Err(err) => HealRecord {
            recovered: false,
            attempts: policy.max_radius,
            core: 0,
            residue: 0,
            base_rounds,
            extra_rounds: 0,
            halted,
            crashed,
            cut,
            failure: Some(err.to_string()),
            metrics: MetricsRegistry::new(),
        },
    }
}

/// Score one plan's base run + recovery attempt: the common tail of every
/// [`Workload::assess`]. Returns the [`Evaluation`] the adversary
/// objectives fold and the degradation report JSON (`"null"` when recovery
/// succeeded).
fn assess_record<P, F, O>(
    g: &Graph,
    run: &SyncRun<O>,
    partial: &[Option<P::Label>],
    problem: &P,
    finisher: &F,
    policy: &RecoveryPolicy,
    trace: Option<&Trace>,
) -> (Evaluation, String)
where
    P: LclProblem,
    F: Finisher<P>,
{
    let (_, crashed, cut) = run.counts();
    match recover_report(problem, g, partial, finisher, policy, trace) {
        Ok(rec) => (
            Evaluation {
                radius: rec.radius,
                degraded: false,
                breaches: 0,
                violations: 0,
                crashed: crashed as u64,
                cut: cut as u64,
            },
            "null".to_string(),
        ),
        Err(report) => {
            let breaches = report.trail.iter().filter(|a| a.breach.is_some()).count();
            let eval = Evaluation {
                radius: policy.max_radius + 1,
                degraded: true,
                breaches: breaches as u64,
                violations: report.violations as u64,
                crashed: crashed as u64,
                cut: cut as u64,
            };
            let json = serde_json::to_string(&*report).expect("degraded run serializes");
            (eval, json)
        }
    }
}

/// `tree-coloring` — Theorem 10's Phase-1 ColorBidding on a Δ = 16 tree.
struct TreeColoring {
    graph: Graph,
    budget: u32,
}

impl TreeColoring {
    /// Decided vertices carry `Some(color)` or `None` (filtered bad) —
    /// both are decisions, but only colors are checkable; flattening folds
    /// filtered vertices into the damaged core, so recovery colors them
    /// too (the finisher plays Theorem 10's deterministic Phase 2, bounded
    /// to the residue instead of centralized).
    fn labels(out: &SyncRun<Option<usize>>) -> Vec<Option<usize>> {
        out.outcomes
            .iter()
            .map(|o| match o {
                Outcome::Halted { output, .. } => *output,
                _ => None,
            })
            .collect()
    }
}

impl Workload for TreeColoring {
    fn name(&self) -> &'static str {
        NAMES[0]
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn crash_window(&self) -> u32 {
        self.budget
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = theorem10_phase1_faulty_metered(
            &self.graph,
            TREE_DELTA,
            seed,
            Theorem10Config::default(),
            plan,
            trace,
            Some(&set),
        );
        let labels = Self::labels(&out);
        // Phase 1 promises Δ − ⌈√Δ⌉ colors; the reserved tail belongs to
        // Phase 2, so the partial check scores against the tighter palette.
        let reserved = (TREE_DELTA as f64).sqrt().ceil() as usize;
        let pv = check_partial(
            &VertexColoring::new(TREE_DELTA - reserved),
            &self.graph,
            &labels,
        );
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = theorem10_phase1_faulty_metered(
            &self.graph,
            TREE_DELTA,
            seed,
            Theorem10Config::default(),
            plan,
            trace,
            Some(&set),
        );
        let labels = Self::labels(&out);
        let mut r = heal_record(
            &self.graph,
            &out,
            &labels,
            &VertexColoring::new(TREE_DELTA),
            &GreedyColoringFinisher {
                palette: TREE_DELTA,
            },
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = theorem10_phase1_faulty_traced(
            &self.graph,
            TREE_DELTA,
            seed,
            Theorem10Config::default(),
            plan,
            trace,
        );
        let labels = Self::labels(&out);
        assess_record(
            &self.graph,
            &out,
            &labels,
            &VertexColoring::new(TREE_DELTA),
            &GreedyColoringFinisher {
                palette: TREE_DELTA,
            },
            policy,
            trace,
        )
    }
}

/// `sinkless` — the sinkless-orientation repair protocol on a cubic graph.
struct Sinkless {
    graph: Graph,
}

impl Sinkless {
    fn algo() -> SinklessRepair {
        SinklessRepair {
            phases: SINKLESS_PHASES,
        }
    }

    fn budget() -> u32 {
        2 * SINKLESS_PHASES + 6
    }
}

impl Workload for Sinkless {
    fn name(&self) -> &'static str {
        NAMES[1]
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn crash_window(&self) -> u32 {
        Self::budget()
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &Self::algo(),
            Self::budget(),
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<Orientation>> = decided_labels(&out);
        let pv = check_partial(
            &SinklessOrientation::new(SINKLESS_DELTA),
            &self.graph,
            &labels,
        );
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &Self::algo(),
            Self::budget(),
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<Orientation>> = decided_labels(&out);
        let mut r = heal_record(
            &self.graph,
            &out,
            &labels,
            &SinklessOrientation::new(SINKLESS_DELTA),
            &SinklessFinisher,
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = faulty_run(
            &self.graph,
            &Self::algo(),
            Self::budget(),
            seed,
            plan,
            trace,
            None,
        );
        let labels: Vec<Option<Orientation>> = decided_labels(&out);
        assess_record(
            &self.graph,
            &out,
            &labels,
            &SinklessOrientation::new(SINKLESS_DELTA),
            &SinklessFinisher,
            policy,
            trace,
        )
    }
}

/// `mis` — Luby's randomized MIS on a quartic graph.
struct MisLuby {
    graph: Graph,
}

impl Workload for MisLuby {
    fn name(&self) -> &'static str {
        NAMES[2]
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn crash_window(&self) -> u32 {
        MIS_SWEEP_BUDGET
    }

    fn adversary_crash_window(&self) -> u32 {
        MIS_ADVERSARY_CRASH_WINDOW
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &Luby::new(),
            MIS_SWEEP_BUDGET,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        let pv = check_partial(&Mis::new(), &self.graph, &labels);
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &Luby::new(),
            MIS_SWEEP_BUDGET,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        let mut r = heal_record(
            &self.graph,
            &out,
            &labels,
            &Mis::new(),
            &LubyRestartFinisher {
                seed: derived_u64(seed, HEAL_FINISHER_STREAM),
            },
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = faulty_run(
            &self.graph,
            &Luby::new(),
            MIS_ASSESS_BUDGET,
            seed,
            plan,
            trace,
            None,
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        assess_record(
            &self.graph,
            &out,
            &labels,
            &Mis::new(),
            &LubyRestartFinisher {
                seed: derived_u64(seed, ASSESS_FINISHER_STREAM),
            },
            policy,
            trace,
        )
    }
}

/// `edge-coloring` — randomized greedy `(Δ+2)`-edge-coloring of a cubic
/// base graph, run as a vertex coloring of its line graph. Fault plans
/// target the line graph (each line vertex *is* one base edge), and the
/// surviving edge colors translate back to per-port labels of the base.
struct EdgeColoring {
    base: Graph,
    line: Graph,
}

impl EdgeColoring {
    /// Translate decided line-graph colors to the base graph's per-vertex
    /// port labels: a base vertex is labeled iff *all* its incident edges
    /// decided.
    fn port_labels(&self, out: &SyncRun<usize>) -> Vec<Option<PortColors>> {
        let colors = decided_labels(out);
        self.base
            .vertices()
            .map(|v| {
                self.base
                    .neighbors(v)
                    .iter()
                    .map(|nb| colors[nb.edge])
                    .collect::<Option<Vec<usize>>>()
                    .map(PortColors)
            })
            .collect()
    }
}

impl Workload for EdgeColoring {
    fn name(&self) -> &'static str {
        NAMES[3]
    }

    fn graph(&self) -> &Graph {
        &self.line
    }

    fn crash_window(&self) -> u32 {
        EDGE_BUDGET
    }

    fn adversary_crash_window(&self) -> u32 {
        EDGE_ADVERSARY_CRASH_WINDOW
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.line,
            &RandGreedy::new(EDGE_PALETTE),
            EDGE_BUDGET,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels = self.port_labels(&out);
        let pv = check_partial(&EdgeKColoring::new(EDGE_PALETTE), &self.base, &labels);
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.line,
            &RandGreedy::new(EDGE_PALETTE),
            EDGE_BUDGET,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels = self.port_labels(&out);
        let mut r = heal_record(
            &self.base,
            &out,
            &labels,
            &EdgeKColoring::new(EDGE_PALETTE),
            &EdgeGreedyFinisher {
                palette: EDGE_PALETTE,
            },
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = faulty_run(
            &self.line,
            &RandGreedy::new(EDGE_PALETTE),
            EDGE_BUDGET,
            seed,
            plan,
            trace,
            None,
        );
        let labels = self.port_labels(&out);
        assess_record(
            &self.base,
            &out,
            &labels,
            &EdgeKColoring::new(EDGE_PALETTE),
            &EdgeGreedyFinisher {
                palette: EDGE_PALETTE,
            },
            policy,
            trace,
        )
    }
}

/// `ruling-set` — the dilated lottery computing a `(2, k)`-ruling set of a
/// cubic graph, checked by the radius-`k` partial verifier.
struct RulingSetWorkload {
    graph: Graph,
    horizon: u32,
}

impl RulingSetWorkload {
    /// Settle horizon: members are pairwise at distance > k, so radius-1
    /// member balls are disjoint and a cubic graph holds at most `n / 4`
    /// of them; one phase per member plus a final coverage phase.
    fn horizon(n: usize) -> u32 {
        (2 * RULING_K + 1) * (n as u32 / 4 + 1)
    }
}

impl Workload for RulingSetWorkload {
    fn name(&self) -> &'static str {
        NAMES[4]
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn crash_window(&self) -> u32 {
        self.horizon
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &DilatedLuby::new(RULING_K, self.horizon),
            self.horizon + 4,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        let pv = check_partial(&RulingSet::new(RULING_K as usize), &self.graph, &labels);
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &DilatedLuby::new(RULING_K, self.horizon),
            self.horizon + 4,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        let mut r = heal_record(
            &self.graph,
            &out,
            &labels,
            &RulingSet::new(RULING_K as usize),
            &RulingSetFinisher {
                k: RULING_K as usize,
            },
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = faulty_run(
            &self.graph,
            &DilatedLuby::new(RULING_K, self.horizon),
            self.horizon + 4,
            seed,
            plan,
            trace,
            None,
        );
        let labels: Vec<Option<bool>> = decided_labels(&out);
        assess_record(
            &self.graph,
            &out,
            &labels,
            &RulingSet::new(RULING_K as usize),
            &RulingSetFinisher {
                k: RULING_K as usize,
            },
            policy,
            trace,
        )
    }
}

/// `defective-coloring` — bid-arbitrated local search for a 1-defective
/// 2-coloring of a cubic graph.
struct Defective {
    graph: Graph,
    horizon: u32,
}

impl Defective {
    /// Settle horizon: the monochromatic edge count strictly decreases
    /// whenever a flip commits, so `m` two-round cycles suffice fault-free.
    fn horizon(m: usize) -> u32 {
        2 * m as u32 + 3
    }

    fn algo(&self) -> DefectiveLocalSearch {
        DefectiveLocalSearch::new(DEFECTIVE_COLORS, DEFECTIVE_DEFECT, self.horizon)
    }
}

impl Workload for Defective {
    fn name(&self) -> &'static str {
        NAMES[5]
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn crash_window(&self) -> u32 {
        self.horizon
    }

    fn measure(&self, seed: u64, plan: &FaultPlan, trace: Option<&Trace>) -> MeasureRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &self.algo(),
            self.horizon + 4,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<usize>> = decided_labels(&out);
        let pv = check_partial(
            &DefectiveColoring::new(DEFECTIVE_COLORS, DEFECTIVE_DEFECT),
            &self.graph,
            &labels,
        );
        measure_record(&out, &pv, &set)
    }

    fn heal(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> HealRecord {
        let set = MetricSet::new();
        let out = faulty_run(
            &self.graph,
            &self.algo(),
            self.horizon + 4,
            seed,
            plan,
            trace,
            Some(&set),
        );
        let labels: Vec<Option<usize>> = decided_labels(&out);
        let mut r = heal_record(
            &self.graph,
            &out,
            &labels,
            &DefectiveColoring::new(DEFECTIVE_COLORS, DEFECTIVE_DEFECT),
            &DefectiveGreedyFinisher {
                colors: DEFECTIVE_COLORS,
                defect: DEFECTIVE_DEFECT,
            },
            policy,
            trace,
            Some(&set),
        );
        r.metrics.absorb(&set);
        r
    }

    fn assess(
        &self,
        seed: u64,
        plan: &FaultPlan,
        policy: &RecoveryPolicy,
        trace: Option<&Trace>,
    ) -> (Evaluation, String) {
        let out = faulty_run(
            &self.graph,
            &self.algo(),
            self.horizon + 4,
            seed,
            plan,
            trace,
            None,
        );
        let labels: Vec<Option<usize>> = decided_labels(&out);
        assess_record(
            &self.graph,
            &out,
            &labels,
            &DefectiveColoring::new(DEFECTIVE_COLORS, DEFECTIVE_DEFECT),
            &DefectiveGreedyFinisher {
                colors: DEFECTIVE_COLORS,
                defect: DEFECTIVE_DEFECT,
            },
            policy,
            trace,
        )
    }
}

/// Build the full catalog, in [`NAMES`] order. A failing graph generator
/// yields `Err((name, error))` for its slot instead of panicking — the
/// sweeps turn that into grid-shaped error rows.
///
/// All generators draw from one [`StdRng`] stream seeded by `graph_seed`,
/// **legacy entries first**: the three legacy graphs are bit-identical to
/// the pre-catalog drivers', so legacy report rows keep their exact bytes.
pub fn workloads(sizes: &Sizes, graph_seed: u64) -> Vec<WorkloadSlot> {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let tree = gen::random_tree_max_degree(sizes.tree_n, TREE_DELTA, &mut rng);
    let cubic = gen::random_regular(sizes.sinkless_n, SINKLESS_DELTA, &mut rng);
    let quartic = gen::random_regular(sizes.mis_n, MIS_DELTA, &mut rng);
    let edge_base = gen::random_regular(sizes.sinkless_n, SINKLESS_DELTA, &mut rng);
    let ruling = gen::random_regular(sizes.mis_n, SINKLESS_DELTA, &mut rng);
    let defective = gen::random_regular(sizes.mis_n, SINKLESS_DELTA, &mut rng);

    let tree_budget = 2 * Theorem10Config::default().schedule(TREE_DELTA).len() as u32 + 4;
    vec![
        Ok(Box::new(TreeColoring {
            graph: tree,
            budget: tree_budget,
        }) as Box<dyn Workload>),
        cubic
            .map_err(|e| (NAMES[1], e))
            .map(|graph| Box::new(Sinkless { graph }) as Box<dyn Workload>),
        quartic
            .map_err(|e| (NAMES[2], e))
            .map(|graph| Box::new(MisLuby { graph }) as Box<dyn Workload>),
        edge_base.map_err(|e| (NAMES[3], e)).map(|base| {
            let line = line_graph(&base);
            Box::new(EdgeColoring { base, line }) as Box<dyn Workload>
        }),
        ruling.map_err(|e| (NAMES[4], e)).map(|graph| {
            let horizon = RulingSetWorkload::horizon(graph.n());
            Box::new(RulingSetWorkload { graph, horizon }) as Box<dyn Workload>
        }),
        defective.map_err(|e| (NAMES[5], e)).map(|graph| {
            let horizon = Defective::horizon(graph.m());
            Box::new(Defective { graph, horizon }) as Box<dyn Workload>
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Sizes {
        Sizes {
            tree_n: 48,
            sinkless_n: 30,
            mis_n: 32,
        }
    }

    #[test]
    fn catalog_is_complete_and_named_canonically() {
        let cat = workloads(&sizes(), 0xCA7);
        assert_eq!(cat.len(), NAMES.len());
        for (slot, name) in cat.iter().zip(NAMES) {
            let w = slot.as_ref().expect("feasible sizes");
            assert_eq!(w.name(), name);
            assert_eq!(static_name(w.name()), Some(name));
            assert!(w.graph().n() > 0);
            assert!(w.crash_window() >= 1);
            assert!(w.adversary_crash_window() <= w.crash_window());
        }
        assert_eq!(static_name("warp-drive"), None);
    }

    #[test]
    fn legacy_graphs_are_independent_of_new_entries() {
        // The legacy prefix draws first from the shared stream: the three
        // legacy graphs must be exactly what a three-entry catalog drew
        // before the menu tripled (pinned by edge count and degree here,
        // byte-identically by the golden differential tests).
        let cat = workloads(&sizes(), 0xE12F);
        let mut rng = StdRng::seed_from_u64(0xE12F);
        let tree = gen::random_tree_max_degree(48, TREE_DELTA, &mut rng);
        let cubic = gen::random_regular(30, SINKLESS_DELTA, &mut rng).unwrap();
        let quartic = gen::random_regular(32, MIS_DELTA, &mut rng).unwrap();
        for (slot, legacy) in cat.iter().take(3).zip([&tree, &cubic, &quartic]) {
            let w = slot.as_ref().unwrap();
            assert_eq!(w.graph().n(), legacy.n());
            assert_eq!(w.graph().m(), legacy.m());
        }
    }

    #[test]
    fn infeasible_slots_carry_their_catalog_name() {
        // Odd n·d kills the cubic generators: sinkless, edge-coloring.
        let cat = workloads(
            &Sizes {
                tree_n: 48,
                sinkless_n: 31,
                mis_n: 32,
            },
            1,
        );
        let failed: Vec<&str> = cat
            .iter()
            .filter_map(|s| s.as_ref().err().map(|(n, _)| *n))
            .collect();
        assert_eq!(failed, vec!["sinkless", "edge-coloring"]);
    }

    #[test]
    fn fault_free_measure_is_fully_valid() {
        for slot in workloads(&sizes(), 0xCA8) {
            let w = slot.expect("feasible sizes");
            let r = w.measure(7, &FaultPlan::none(), None);
            assert_eq!(r.crashed, 0, "{}", w.name());
            assert_eq!(r.cut, 0, "{}: nothing may outlive the budget", w.name());
            assert_eq!(r.skipped, 0, "{}: every vertex checkable", w.name());
            assert_eq!(r.valid, r.checked, "{}: fault-free is valid", w.name());
        }
    }

    #[test]
    fn fault_free_heal_is_a_no_op() {
        let policy = RecoveryPolicy::default();
        for slot in workloads(&sizes(), 0xCA9) {
            let w = slot.expect("feasible sizes");
            let r = w.heal(7, &FaultPlan::none(), &policy, None);
            assert!(r.recovered, "{}: {:?}", w.name(), r.failure);
            assert_eq!(r.attempts, 0, "{}: no escalation fault-free", w.name());
            assert_eq!(r.core, 0, "{}: empty damaged core", w.name());
            assert_eq!(r.extra_rounds, 0, "{}: finisher is a no-op", w.name());
        }
    }
}
