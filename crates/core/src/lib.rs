//! The paper's contribution: transforms and experiments connecting RandLOCAL
//! and DetLOCAL.
//!
//! * [`derand`] — Theorem 3, `Det_P(n, Δ) ≤ Rand_P(2^(n²), Δ)`: an
//!   executable derandomizer over toy instance spaces.
//! * [`speedup`] — Theorems 6/8: the automatic `f(Δ) + ε·log_Δ n →
//!   O(log* n)` speedup via ID shortening on power graphs.
//! * [`shatter`] — the generic graph-shattering combinator and component
//!   measurement.
//! * [`invariance`] — the Naor–Stockmeyer order-invariance checker (the
//!   engine behind the paper's Corollary 1 discussion).
//! * [`adversary`] — worst-case fault-plan search: the deterministic tabu
//!   optimizer over [`FaultPlan`](local_model::FaultPlan) space behind E14.
//! * [`workloads`] — the workload catalog: the graph × protocol × checker
//!   × finisher quadruples E12/E13/E14 sweep, heal, and attack, behind one
//!   object-safe trait.
//! * [`experiments`] — the E1–E9 experiment drivers behind EXPERIMENTS.md.
//! * [`trials`] — the shared seeded parallel trial harness those drivers
//!   run their randomized batches through.
//! * [`checkpoint`] — the JSON-lines checkpoint store behind the binaries'
//!   `--checkpoint` flag (kill-and-resume sweeps).
//! * [`fabric`] — the crash-tolerant sweep fabric: a coordinator/worker
//!   process pool with lease-based work stealing, heartbeat deadlines,
//!   supervised respawn, and a bit-identical journal merge.
//! * [`retry`] — jittered exponential backoff with a cap and budget (paces
//!   the fabric's worker respawns; injectable clock for tests).
//! * [`fit`] — model-function fitting used to classify measured round
//!   complexities (`log n` vs `log log n` vs `log* n` …).
//! * [`report`] — aligned text tables for experiment output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod checkpoint;
pub mod derand;
pub mod experiments;
pub mod fabric;
pub mod fit;
pub mod invariance;
pub mod report;
pub mod retry;
pub mod shatter;
pub mod speedup;
pub mod trials;
pub mod workloads;
