//! Theorem 3, executed: `Det_P(n, Δ) ≤ Rand_P(2^(n²), Δ)`.
//!
//! The proof is a counting argument: run the randomized algorithm with the
//! *claimed* size `N = 2^(n²)` (failure probability ≤ 1/N), replace each
//! vertex's random string by `φ(ID(v))` for a function `φ` drawn at random,
//! and union-bound over the fewer-than-`N` possible `n`-vertex instances —
//! a good `φ` exists, and hard-wiring it yields a deterministic algorithm.
//!
//! At toy scale the counting argument is *machine-checkable*: we enumerate
//! the entire instance space `𝒢(n, Δ)` (every labeled graph on `n` vertices
//! with max degree ≤ Δ, under every injective ID assignment from a `b`-bit
//! space), sample `φ` as the proof does, and exhaustively verify that the
//! derandomized algorithm `A_Det[φ]` errs on *no* instance.
//!
//! The randomized algorithm being derandomized is **priority MIS**: each
//! vertex draws a random priority from `0..N²` and greedily joins the MIS
//! when it beats all undecided neighbors; it fails only when two adjacent
//! vertices draw equal priorities (probability ≤ n²/N² ≤ 1/N per run), so it
//! meets Theorem 3's hypothesis exactly.

use local_graphs::{Graph, GraphBuilder};
use local_lcl::problems::Mis;
use local_lcl::{Labeling, LclProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One instance of the space `𝒢(n, Δ)`: a graph plus an injective ID
/// assignment.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The graph.
    pub graph: Graph,
    /// Per-vertex IDs, drawn from the `b`-bit space.
    pub ids: Vec<u64>,
}

/// Enumerate every labeled graph on `n` vertices with maximum degree ≤
/// `delta`, under every injective assignment of IDs from `0..2^id_bits`.
///
/// Size: `(#graphs) × P(2^b, n)` — exponential, as the theorem's proof
/// requires. Guarded to toy scales.
///
/// # Panics
///
/// Panics if `n > 5` or `2^id_bits < n` or the space would exceed ~10⁷
/// instances.
pub fn enumerate_instances(n: usize, delta: usize, id_bits: u32) -> Vec<Instance> {
    assert!(n <= 5, "instance space is exponential; keep n ≤ 5");
    let id_space = 1u64 << id_bits;
    assert!(id_space >= n as u64, "ID space must fit n distinct IDs");
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    // All graphs with degree cap.
    let mut graphs: Vec<Graph> = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let mut b = GraphBuilder::new(n);
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                b.add_edge(u, v).expect("each pair once");
            }
        }
        let g = b.build();
        if g.max_degree() <= delta {
            graphs.push(g);
        }
    }
    // All injective ID tuples.
    let mut id_tuples: Vec<Vec<u64>> = Vec::new();
    let mut current: Vec<u64> = Vec::new();
    fn gen_tuples(space: u64, n: usize, current: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for id in 0..space {
            if !current.contains(&id) {
                current.push(id);
                gen_tuples(space, n, current, out);
                current.pop();
            }
        }
    }
    gen_tuples(id_space, n, &mut current, &mut id_tuples);
    let total = graphs.len().saturating_mul(id_tuples.len());
    assert!(total <= 10_000_000, "instance space too large: {total}");
    let mut instances = Vec::with_capacity(total);
    for g in &graphs {
        for ids in &id_tuples {
            instances.push(Instance {
                graph: g.clone(),
                ids: ids.clone(),
            });
        }
    }
    instances
}

/// Run priority MIS deterministically with the given per-vertex priorities.
/// Returns `None` if the run stalls (two adjacent equal priorities) —
/// the failure event of the randomized algorithm.
pub fn priority_mis(g: &Graph, priorities: &[u64]) -> Option<Vec<bool>> {
    let n = g.n();
    let mut state: Vec<Option<bool>> = vec![None; n]; // None = undecided
    loop {
        let mut progressed = false;
        let mut joins: Vec<usize> = Vec::new();
        for v in 0..n {
            if state[v].is_some() {
                continue;
            }
            let beats_all = g.neighbors(v).iter().all(|nb| match state[nb.node] {
                None => priorities[v] > priorities[nb.node],
                Some(_) => true,
            });
            if beats_all {
                joins.push(v);
            }
        }
        for &v in &joins {
            state[v] = Some(true);
            progressed = true;
        }
        for v in 0..n {
            if state[v].is_none() && g.neighbors(v).iter().any(|nb| state[nb.node] == Some(true)) {
                state[v] = Some(false);
                progressed = true;
            }
        }
        if state.iter().all(Option::is_some) {
            return Some(state.into_iter().map(|s| s.expect("all decided")).collect());
        }
        if !progressed {
            return None; // adjacent equal priorities: the failure event
        }
    }
}

/// Failure of the φ search in [`derandomize_priority_mis`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DerandError {
    /// No sampled `φ` verified on the whole instance space within the try
    /// budget. The union bound makes this vanishingly unlikely at sane
    /// parameters, so hitting it signals a parameter mistake (e.g. an ID
    /// space so small that adjacent ties are forced), not bad luck.
    NoGoodPhi {
        /// How many candidate `φ` were sampled and rejected.
        tries: u32,
        /// Size of the instance space each candidate was checked against.
        instances: usize,
    },
}

impl std::fmt::Display for DerandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerandError::NoGoodPhi { tries, instances } => write!(
                f,
                "no good φ within {tries} samples against {instances} instances — \
                 parameters violate the union bound"
            ),
        }
    }
}

impl std::error::Error for DerandError {}

/// The derandomization record (experiment E6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DerandReport {
    /// Instance-space parameters.
    pub n: usize,
    /// Degree cap Δ.
    pub delta: usize,
    /// ID width in bits.
    pub id_bits: u32,
    /// Number of instances exhaustively verified.
    pub instances: usize,
    /// The claimed size `N = 2^(n²)` the randomized algorithm ran with.
    pub claimed_n: u64,
    /// How many candidate `φ` were sampled before a good one appeared.
    pub phis_tried: u32,
    /// The good `φ`: `phi[id]` is the priority hard-wired for that ID.
    pub phi: Vec<u64>,
}

/// Execute Theorem 3 on the toy space: sample `φ : {0..2^b} → 0..N²` until
/// `A_Det[φ]` (priority MIS with priorities `φ(ID(v))`) solves MIS on
/// *every* instance, then return the verified table.
///
/// The theorem guarantees a random `φ` is good with probability
/// `> 1 − |𝒢|/N`; with `N = 2^(n²)` vastly exceeding the instance count,
/// a handful of samples suffice (usually one).
///
/// # Errors
///
/// [`DerandError::NoGoodPhi`] if no sampled φ verifies within `max_tries`
/// (probability ≈ 0 unless the parameters are nonsensical).
///
/// # Panics
///
/// Panics on the same scale guards as [`enumerate_instances`].
pub fn derandomize_priority_mis(
    n: usize,
    delta: usize,
    id_bits: u32,
    seed: u64,
    max_tries: u32,
) -> Result<DerandReport, DerandError> {
    let instances = enumerate_instances(n, delta, id_bits);
    let claimed_n: u64 = 1u64
        .checked_shl((n * n) as u32)
        .expect("n ≤ 5 keeps 2^(n²) within u64");
    let priority_space = claimed_n.saturating_mul(claimed_n);
    let id_space = 1usize << id_bits;
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 1..=max_tries {
        let phi: Vec<u64> = (0..id_space)
            .map(|_| rng.gen_range(0..priority_space))
            .collect();
        let good = instances.iter().all(|inst| {
            let priorities: Vec<u64> = inst.ids.iter().map(|&id| phi[id as usize]).collect();
            match priority_mis(&inst.graph, &priorities) {
                Some(in_set) => {
                    let labels: Labeling<bool> = in_set.into();
                    Mis::new().validate(&inst.graph, &labels).is_ok()
                }
                None => false,
            }
        });
        if good {
            return Ok(DerandReport {
                n,
                delta,
                id_bits,
                instances: instances.len(),
                claimed_n,
                phis_tried: attempt,
                phi,
            });
        }
    }
    Err(DerandError::NoGoodPhi {
        tries: max_tries,
        instances: instances.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use local_graphs::gen;

    #[test]
    fn instance_space_size_n3() {
        // n = 3, Δ = 2: graphs = 2^3 (all have Δ ≤ 2), ids = P(4,3) = 24.
        let inst = enumerate_instances(3, 2, 2);
        assert_eq!(inst.len(), 8 * 24);
    }

    #[test]
    fn degree_cap_filters_graphs() {
        // n = 4, Δ = 1: graphs are matchings only (7 of them: empty + 6
        // single edges... plus 3 perfect matchings = 10).
        let inst = enumerate_instances(4, 1, 2);
        let graphs: std::collections::HashSet<Vec<(usize, usize)>> =
            inst.iter().map(|i| i.graph.edges().to_vec()).collect();
        assert_eq!(graphs.len(), 10);
    }

    #[test]
    fn priority_mis_solves_with_distinct_priorities() {
        let g = gen::cycle(5);
        let out = priority_mis(&g, &[10, 3, 7, 1, 9]).expect("distinct priorities succeed");
        let labels: Labeling<bool> = out.into();
        assert!(Mis::new().validate(&g, &labels).is_ok());
    }

    #[test]
    fn priority_mis_fails_on_adjacent_ties() {
        let g = gen::path(2);
        assert!(priority_mis(&g, &[5, 5]).is_none());
    }

    #[test]
    fn priority_mis_tolerates_non_adjacent_ties() {
        let g = gen::path(3);
        let out = priority_mis(&g, &[5, 9, 5]).expect("non-adjacent ties are fine");
        assert_eq!(out, vec![false, true, false]);
    }

    #[test]
    fn derandomizes_n3() {
        let report = derandomize_priority_mis(3, 2, 2, 1, 64).expect("union bound");
        assert_eq!(report.claimed_n, 1 << 9);
        assert_eq!(report.instances, 8 * 24);
        assert!(report.phis_tried >= 1);
        // The φ table must be injective on the toy space (otherwise two
        // adjacent IDs could tie) — implied by verification, check directly:
        let distinct: std::collections::HashSet<_> = report.phi.iter().collect();
        assert_eq!(distinct.len(), report.phi.len());
    }

    #[test]
    fn derandomizes_n4_quickly() {
        let report = derandomize_priority_mis(4, 3, 3, 2, 64).expect("union bound");
        assert!(report.phis_tried <= 4, "union bound predicts ~1 try");
        assert_eq!(report.claimed_n, 1 << 16);
    }

    #[test]
    fn exhausted_budget_yields_typed_error() {
        // A zero-try budget can never find a φ: the search must report the
        // failure as a value, not a panic.
        let err = derandomize_priority_mis(3, 2, 2, 1, 0).unwrap_err();
        assert_eq!(
            err,
            DerandError::NoGoodPhi {
                tries: 0,
                instances: 8 * 24
            }
        );
        assert!(err.to_string().contains("no good φ"));
    }

    #[test]
    #[should_panic(expected = "n ≤ 5")]
    fn rejects_large_n() {
        let _ = enumerate_instances(6, 3, 3);
    }
}
