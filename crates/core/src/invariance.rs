//! Order invariance (Naor–Stockmeyer).
//!
//! The paper's Corollary 1 extends the Naor–Stockmeyer result that `O(1)`-
//! round (and by the corollary, `2^O(log* n)`-round) RandLOCAL algorithms
//! derandomize freely. The engine of the original proof is **order
//! invariance**: by Ramsey's theorem, constant-time algorithms may be
//! assumed to depend only on the *relative order* of the IDs in a view, not
//! their values.
//!
//! This module provides the executable face of that concept: a randomized
//! checker that runs a DetLOCAL algorithm under random *order-preserving*
//! ID remappings and reports whether the outputs ever change. Algorithms
//! that only compare IDs (greedy-by-ID, priority MIS) pass; algorithms that
//! read ID *bits* (Linial's recoloring) fail — which is precisely why
//! Linial-style algorithms beat the `Ω(Δ/log Δ)`-color Ramsey barrier that
//! order-invariant algorithms face.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random strictly increasing remapping of the given IDs into a larger
/// space: equal relative order, fresh values.
///
/// # Panics
///
/// Panics if `ids` contains duplicates (IDs must be unique) or if the
/// stretched space `(max gap) × stretch` overflows `u64` (keep
/// `stretch ≤ 2^16`).
pub fn order_preserving_remap(ids: &[u64], stretch: u64, seed: u64) -> Vec<u64> {
    let mut sorted: Vec<(u64, usize)> = ids.iter().copied().zip(0..).collect();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        assert_ne!(w[0].0, w[1].0, "IDs must be distinct");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut remapped = vec![0u64; ids.len()];
    let mut current: u64 = rng.gen_range(0..stretch);
    for &(_, original_index) in &sorted {
        remapped[original_index] = current;
        current = current
            .checked_add(1 + rng.gen_range(0..stretch))
            .expect("stretched ID space fits u64");
    }
    remapped
}

/// The verdict of an order-invariance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderInvariance {
    /// All trials produced identical outputs.
    Invariant {
        /// How many remappings were tested.
        trials: u32,
    },
    /// Some remapping changed the output.
    Sensitive {
        /// The 0-based trial index that first diverged.
        diverged_at: u32,
    },
}

impl OrderInvariance {
    /// Whether the algorithm looked order-invariant across all trials.
    pub fn is_invariant(&self) -> bool {
        matches!(self, OrderInvariance::Invariant { .. })
    }
}

/// Run `algorithm` (any function from an ID vector to per-vertex outputs)
/// under `trials` random order-preserving remappings of `base_ids` and
/// compare outputs.
///
/// A `Sensitive` verdict is *proof* of order sensitivity; an `Invariant`
/// verdict is evidence (randomized testing), which is the appropriate
/// epistemic strength for a checker — Naor–Stockmeyer's theorem is about
/// the existence of equivalent order-invariant algorithms, not about any
/// particular implementation.
pub fn check_order_invariance<L, F>(
    base_ids: &[u64],
    algorithm: F,
    trials: u32,
    seed: u64,
) -> OrderInvariance
where
    L: PartialEq,
    F: Fn(&[u64]) -> Vec<L>,
{
    let reference = algorithm(base_ids);
    for t in 0..trials {
        let remapped = order_preserving_remap(base_ids, 1 << 12, seed ^ u64::from(t) << 8);
        if algorithm(&remapped) != reference {
            return OrderInvariance::Sensitive { diverged_at: t };
        }
    }
    OrderInvariance::Invariant { trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup::greedy_color_by_ids;
    use local_algorithms::color::linial::linial_color_from;
    use local_graphs::gen;

    #[test]
    fn remap_preserves_order() {
        let ids = vec![5u64, 1, 9, 3];
        let remapped = order_preserving_remap(&ids, 100, 7);
        // Same argsort.
        let order = |v: &[u64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by_key(|&i| v[i]);
            idx
        };
        assert_eq!(order(&ids), order(&remapped));
        let distinct: std::collections::HashSet<_> = remapped.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn remap_rejects_duplicates() {
        let _ = order_preserving_remap(&[1, 1], 10, 0);
    }

    #[test]
    fn greedy_by_id_is_order_invariant() {
        let g = gen::path(24);
        let ids: Vec<u64> = (0..24u64).rev().collect();
        let verdict = check_order_invariance(
            &ids,
            |ids| greedy_color_by_ids(&g, ids.to_vec(), 3).labels.into_inner(),
            8,
            42,
        );
        assert!(verdict.is_invariant(), "{verdict:?}");
    }

    #[test]
    fn linial_is_order_sensitive() {
        // Linial's recoloring reads ID *bits* (polynomial coefficients), so
        // order-preserving remaps change its output — the structural reason
        // it evades the Ramsey-type lower bounds on order-invariant
        // algorithms.
        let g = gen::cycle(32);
        let ids: Vec<u64> = (0..32u64).collect();
        let verdict = check_order_invariance(
            &ids,
            |ids| {
                linial_color_from(&g, ids.to_vec(), 1 << 30, 2)
                    .labels
                    .into_inner()
            },
            8,
            43,
        );
        assert!(
            !verdict.is_invariant(),
            "Linial should depend on ID values, got {verdict:?}"
        );
    }

    #[test]
    fn constant_algorithms_are_trivially_invariant() {
        let ids: Vec<u64> = (0..10u64).collect();
        let verdict = check_order_invariance(&ids, |ids| vec![7u8; ids.len()], 4, 1);
        assert_eq!(verdict, OrderInvariance::Invariant { trials: 4 });
    }
}
