//! The shared trial harness: seeded, parallel, reproducible.
//!
//! Every experiment that averages a randomized algorithm over independent
//! runs used to hand-roll the same sequential loop (`for seed in 0..k`).
//! [`TrialPlan`] replaces those loops: it derives one independent seed per
//! trial from a master seed through the engine's own stream-splitting
//! ([`local_model::derived_rng`]), executes the trials in parallel with
//! rayon, and returns the per-trial results *in trial order* — so the
//! aggregate an experiment computes is bit-identical no matter how many
//! worker threads ran.
//!
//! [`summarize_runs`] aggregates the engine's per-run [`RunStats`] into the
//! JSON-friendly [`StatsSummary`], and [`TrialReport`] is the stable JSON
//! envelope the `exp_e*` binaries emit under `--json` (schema documented in
//! the README).

use local_model::{derived_rng, derived_u64, RunStats};
use local_obs::{Trace, TraceSink};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A batch of independent seeded trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialPlan {
    trials: u64,
    master_seed: u64,
}

/// One trial's identity: its index in the batch and its derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Position in the batch, `0 .. trials`.
    pub index: u64,
    /// The independent per-trial seed, derived from the plan's master seed.
    pub seed: u64,
}

impl Trial {
    /// A fresh deterministic RNG for this trial (for auxiliary randomness
    /// such as workload generation, split from the trial seed the same way
    /// the engine splits node streams).
    pub fn rng(&self) -> ChaCha8Rng {
        derived_rng(self.seed, 0)
    }
}

/// The checkpoint capability of a [`TrialSpec`]: the store, the scope key,
/// and the outcome codec (captured as fn pointers when the spec is built,
/// so [`TrialPlan::execute`] itself carries no serde bounds).
struct CheckpointSlot<'a, R> {
    store: &'a crate::checkpoint::Checkpoint,
    scope: &'a str,
    encode: fn(&TrialOutcome<R>) -> serde::Value,
    decode: fn(&serde::Value) -> Option<TrialOutcome<R>>,
}

/// How a batch of trials executes: panic isolation × checkpoint/resume ×
/// per-trial tracing, composed freely.
///
/// The five `TrialPlan::run*` variants of PRs 2–4 each hard-wired one
/// combination; a spec states the combination as data and
/// [`TrialPlan::execute`] is the single entry point. The default spec is the
/// plain parallel batch: panics propagate, nothing is recorded, no trace
/// buffers are allocated.
///
/// The spec is consumed by `execute` (the trace sink is an `&mut` borrow),
/// so build it at the call site.
pub struct TrialSpec<'a, 'sink, R> {
    isolate: bool,
    checkpoint: Option<CheckpointSlot<'a, R>>,
    sink: Option<&'a mut (dyn TraceSink + 'sink)>,
    trace_base: u64,
}

impl<R> Default for TrialSpec<'_, '_, R> {
    fn default() -> Self {
        TrialSpec {
            isolate: false,
            checkpoint: None,
            sink: None,
            trace_base: 0,
        }
    }
}

impl<'a, 'sink, R> TrialSpec<'a, 'sink, R> {
    /// The plain parallel batch: no isolation, no checkpoint, no trace.
    pub fn new() -> Self {
        TrialSpec::default()
    }

    /// Catch per-trial panics: a panicking trial becomes
    /// [`TrialOutcome::Panicked`] in its slot while the rest of the batch
    /// completes — a poisoned worker never takes the batch down.
    pub fn isolated(mut self) -> Self {
        self.isolate = true;
        self
    }

    /// Checkpoint/resume against `(store, scope)`: a trial already recorded
    /// under `(scope, index)` is *not* re-executed — its recorded outcome is
    /// decoded and returned in place (a replayed trial emits no trace
    /// events) — and every freshly computed outcome is appended (and
    /// flushed) to the store before the batch completes. `None` leaves the
    /// spec un-checkpointed, so callers can thread their CLI `Option`
    /// straight through.
    ///
    /// `scope` must identify everything the trial depends on besides its
    /// index (workload, grid point, master seed), so a resumed sweep with
    /// different parameters never reuses stale results. Recorded results
    /// whose JSON no longer decodes as `R` (e.g. after a schema change) are
    /// recomputed, not errors.
    pub fn checkpointed(
        mut self,
        checkpoint: Option<(&'a crate::checkpoint::Checkpoint, &'a str)>,
    ) -> Self
    where
        R: Serialize + Deserialize,
    {
        self.checkpoint = checkpoint.map(|(store, scope)| CheckpointSlot {
            store,
            scope,
            encode: encode_outcome::<R>,
            decode: decode_outcome::<R>,
        });
        self
    }

    /// Per-trial tracing: each trial gets its own [`Trace`] buffer (stamped
    /// with the trial index), and after all trials finish the buffered
    /// events are drained into `sink` *in trial order* and flushed once. The
    /// emitted stream is therefore bit-identical no matter how many rayon
    /// workers executed the batch — thread-count invariance holds by
    /// construction, not by luck. `None` traces nothing: no buffers are
    /// allocated and the trial body sees `None`.
    pub fn traced(mut self, sink: Option<&'a mut (dyn TraceSink + 'sink)>) -> Self {
        self.sink = sink;
        self
    }

    /// Stamp traced trials starting from `base`: trial `i` of the batch is
    /// trace trial `base + i`. Experiments sweeping several points through
    /// successive plans use this to keep trial numbers unique across the
    /// whole trace file.
    pub fn trace_base(mut self, base: u64) -> Self {
        self.trace_base = base;
        self
    }
}

impl TrialPlan {
    /// A plan for `trials` runs derived from `master_seed`.
    pub fn new(trials: u64, master_seed: u64) -> Self {
        TrialPlan {
            trials,
            master_seed,
        }
    }

    /// Number of trials in the batch.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The derived seed of trial `index` — stable across runs and
    /// independent across indices.
    pub fn seed(&self, index: u64) -> u64 {
        derived_u64(self.master_seed, index)
    }

    /// Run all trials in parallel under `spec`; results come back in trial
    /// order, so any fold over them is deterministic regardless of thread
    /// count.
    ///
    /// `f` must depend only on its [`Trial`] argument, the [`Trace`] handle
    /// it is passed (when the spec traces), and shared read-only captures —
    /// the harness guarantees nothing else. Without
    /// [`TrialSpec::isolated`], every returned outcome is
    /// [`TrialOutcome::Ok`] (a panic propagates and takes the batch down);
    /// unwrap the batch with [`TrialOutcome::into_ok`].
    ///
    /// # Panics
    ///
    /// If appending to the spec's checkpoint file fails — a broken
    /// checkpoint cannot guarantee resumability, so it fails loudly rather
    /// than silently degrading.
    pub fn execute<R, F>(&self, spec: TrialSpec<'_, '_, R>, f: F) -> Vec<TrialOutcome<R>>
    where
        R: Send,
        F: Fn(Trial, Option<&Trace>) -> R + Sync,
    {
        let TrialSpec {
            isolate,
            checkpoint,
            sink,
            trace_base,
        } = spec;
        let body = |trial: Trial, trace: Option<&Trace>| -> TrialOutcome<R> {
            if let Some(slot) = &checkpoint {
                if let Some(recorded) = slot.store.lookup(slot.scope, trial.index) {
                    if let Some(outcome) = (slot.decode)(&recorded) {
                        return outcome;
                    }
                }
            }
            let outcome = if isolate {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(trial, trace))) {
                    Ok(value) => TrialOutcome::Ok(value),
                    Err(payload) => TrialOutcome::Panicked {
                        message: panic_message(payload.as_ref()),
                    },
                }
            } else {
                TrialOutcome::Ok(f(trial, trace))
            };
            if let Some(slot) = &checkpoint {
                slot.store
                    .record(slot.scope, trial.index, (slot.encode)(&outcome))
                    .expect("checkpoint append failed");
            }
            outcome
        };
        let trials: Vec<Trial> = (0..self.trials)
            .map(|index| Trial {
                index,
                seed: self.seed(index),
            })
            .collect();
        match sink {
            None => trials.into_par_iter().map(|t| body(t, None)).collect(),
            Some(sink) => {
                let traced: Vec<(TrialOutcome<R>, Trace)> = trials
                    .into_par_iter()
                    .map(|trial| {
                        let trace = Trace::new(trace_base + trial.index);
                        let r = body(trial, Some(&trace));
                        (r, trace)
                    })
                    .collect();
                let mut results = Vec::with_capacity(self.trials as usize);
                for (r, trace) in traced {
                    for event in trace.into_events() {
                        sink.record(&event);
                    }
                    results.push(r);
                }
                sink.flush();
                results
            }
        }
    }

    /// [`execute`](Self::execute), then average `value` over the trials.
    ///
    /// An empty plan has a mean of `0.0` (never `NaN`).
    pub fn mean<F>(&self, value: F) -> f64
    where
        F: Fn(Trial) -> f64 + Sync,
    {
        if self.trials == 0 {
            return 0.0;
        }
        let total: f64 = self
            .execute(TrialSpec::new(), |t, _| value(t))
            .into_iter()
            .map(TrialOutcome::into_ok)
            .sum();
        total / self.trials as f64
    }
}

/// Encode a trial outcome as a checkpoint value: `{"ok": R}` or
/// `{"panicked": "message"}`. (Hand-written — the derive macro does not
/// cover data-carrying enums.) Shared with the fabric worker, which journals
/// outcomes in exactly this shape so merged sweeps decode identically.
pub(crate) fn encode_outcome<R: Serialize>(outcome: &TrialOutcome<R>) -> serde::Value {
    match outcome {
        TrialOutcome::Ok(value) => serde::Value::Object(vec![("ok".to_string(), value.to_value())]),
        TrialOutcome::Panicked { message } => serde::Value::Object(vec![(
            "panicked".to_string(),
            serde::Value::String(message.clone()),
        )]),
    }
}

/// Decode a checkpoint value recorded by [`encode_outcome`]; `None` for any
/// shape mismatch (the trial is then recomputed).
pub(crate) fn decode_outcome<R: Deserialize>(v: &serde::Value) -> Option<TrialOutcome<R>> {
    if let Some(ok) = v.get("ok") {
        return R::from_value(ok).ok().map(TrialOutcome::Ok);
    }
    if let Some(msg) = v.get("panicked") {
        return msg.as_str().ok().map(|message| TrialOutcome::Panicked {
            message: message.to_string(),
        });
    }
    None
}

/// The fate of one isolated trial (see [`TrialPlan::run_isolated`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialOutcome<R> {
    /// The trial completed and produced a result.
    Ok(R),
    /// The trial panicked; the batch survived.
    Panicked {
        /// The panic payload rendered as text (`"<non-string panic>"` when
        /// the payload is neither `&str` nor `String`).
        message: String,
    },
}

impl<R> TrialOutcome<R> {
    /// The result, if the trial completed.
    pub fn ok(self) -> Option<R> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Panicked { .. } => None,
        }
    }

    /// Did the trial panic?
    pub fn is_panicked(&self) -> bool {
        matches!(self, TrialOutcome::Panicked { .. })
    }

    /// The result of a trial that cannot have panicked (a batch executed
    /// without [`TrialSpec::isolated`] propagates panics instead of
    /// recording them).
    ///
    /// # Panics
    ///
    /// If the trial did panic (only possible under isolation), re-raising
    /// its message.
    pub fn into_ok(self) -> R {
        match self {
            TrialOutcome::Ok(r) => r,
            TrialOutcome::Panicked { message } => {
                panic!("into_ok on a panicked trial: {message}")
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Aggregate of the engine's [`RunStats`] over a batch of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of runs aggregated.
    pub runs: u64,
    /// Total messages sent across all runs.
    pub messages_total: u64,
    /// Mean messages per run.
    pub messages_mean: f64,
    /// Mean engine sweeps per run.
    pub sweeps_mean: f64,
    /// Smallest sweep count observed.
    pub sweeps_min: u32,
    /// Largest sweep count observed.
    pub sweeps_max: u32,
    /// Mean round complexity per run (`sweeps − 1`: the final sweep only
    /// collects halts).
    pub rounds_mean: f64,
    /// Largest round complexity observed.
    pub rounds_max: u32,
    /// Largest single-round message volume observed across all runs (0 when
    /// no run recorded per-round message counts).
    pub messages_max_round: u64,
}

/// Round complexity of one run. The engine's final sweep only collects
/// halts, so a run with `s` sweeps performed `s − 1` algorithmic rounds.
/// The degenerate cases are explicit: a zero-sweep run (the engine never
/// stepped — e.g. an immediate budget cut) and a one-sweep run (every vertex
/// halted on its first activation) both count as zero rounds.
fn rounds_of(sweeps: u32) -> u32 {
    match sweeps {
        0 | 1 => 0,
        s => s - 1,
    }
}

/// Aggregate per-run [`RunStats`] into a [`StatsSummary`].
///
/// Returns a zeroed summary for an empty batch.
pub fn summarize_runs<'a, I>(runs: I) -> StatsSummary
where
    I: IntoIterator<Item = &'a RunStats>,
{
    let mut n = 0u64;
    let mut messages_total = 0u64;
    let mut sweeps_total = 0u64;
    let mut sweeps_min = u32::MAX;
    let mut sweeps_max = 0u32;
    let mut rounds_total = 0u64;
    let mut rounds_max = 0u32;
    let mut messages_max_round = 0u64;
    for s in runs {
        n += 1;
        messages_total += s.messages_sent;
        sweeps_total += u64::from(s.sweeps);
        sweeps_min = sweeps_min.min(s.sweeps);
        sweeps_max = sweeps_max.max(s.sweeps);
        let rounds = rounds_of(s.sweeps);
        rounds_total += u64::from(rounds);
        rounds_max = rounds_max.max(rounds);
        if let Some(&peak) = s.messages_per_round.iter().max() {
            messages_max_round = messages_max_round.max(peak);
        }
    }
    if n == 0 {
        return StatsSummary {
            runs: 0,
            messages_total: 0,
            messages_mean: 0.0,
            sweeps_mean: 0.0,
            sweeps_min: 0,
            sweeps_max: 0,
            rounds_mean: 0.0,
            rounds_max: 0,
            messages_max_round: 0,
        };
    }
    StatsSummary {
        runs: n,
        messages_total,
        messages_mean: messages_total as f64 / n as f64,
        sweeps_mean: sweeps_total as f64 / n as f64,
        sweeps_min,
        sweeps_max,
        rounds_mean: rounds_total as f64 / n as f64,
        rounds_max,
        messages_max_round,
    }
}

/// The JSON envelope the experiment binaries emit under `--json`: one object
/// per experiment, carrying the measured rows verbatim.
///
/// `R` is usually a row slice, but any serializable payload works (E8 emits
/// a two-section struct).
#[derive(Debug, Clone)]
pub struct TrialReport<'a, R: Serialize + ?Sized> {
    /// Experiment identifier (`"E1"`, …, `"A1"`).
    pub experiment: &'a str,
    /// `"quick"` or `"full"`.
    pub mode: &'a str,
    /// The measured rows, exactly as tabulated.
    pub rows: &'a R,
}

// Hand-written: the derive does not cover lifetime-parameterized structs.
impl<R: Serialize + ?Sized> Serialize for TrialReport<'_, R> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "experiment".to_string(),
                serde::Value::String(self.experiment.to_string()),
            ),
            (
                "mode".to_string(),
                serde::Value::String(self.mode.to_string()),
            ),
            ("rows".to_string(), self.rows.to_value()),
        ])
    }
}

impl<R: Serialize + ?Sized> TrialReport<'_, R> {
    /// Render the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report rows serialize infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;

    /// The plain-batch shape, via the unified entry point.
    fn run<R: Send>(plan: &TrialPlan, f: impl Fn(Trial) -> R + Sync) -> Vec<R> {
        plan.execute(TrialSpec::new(), |t, _| f(t))
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect()
    }

    /// The isolated shape, via the unified entry point.
    fn run_isolated<R: Send>(
        plan: &TrialPlan,
        f: impl Fn(Trial) -> R + Sync,
    ) -> Vec<TrialOutcome<R>> {
        plan.execute(TrialSpec::new().isolated(), |t, _| f(t))
    }

    /// The isolated + checkpointed shape, via the unified entry point.
    fn run_checkpointed<R: Serialize + Deserialize + Send>(
        plan: &TrialPlan,
        checkpoint: Option<(&Checkpoint, &str)>,
        f: impl Fn(Trial) -> R + Sync,
    ) -> Vec<TrialOutcome<R>> {
        plan.execute(
            TrialSpec::new().isolated().checkpointed(checkpoint),
            |t, _| f(t),
        )
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let plan = TrialPlan::new(64, 7);
        let again = TrialPlan::new(64, 7);
        let seeds: Vec<u64> = (0..64).map(|i| plan.seed(i)).collect();
        assert_eq!(seeds, (0..64).map(|i| again.seed(i)).collect::<Vec<u64>>());
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), 64, "derived seeds must not collide");
        assert_ne!(plan.seed(0), TrialPlan::new(64, 8).seed(0));
    }

    #[test]
    fn run_preserves_trial_order() {
        let plan = TrialPlan::new(500, 3);
        let indices: Vec<u64> = run(&plan, |t| t.index);
        assert_eq!(indices, (0..500).collect::<Vec<u64>>());
        let seeds: Vec<u64> = run(&plan, |t| t.seed);
        assert_eq!(seeds, (0..500).map(|i| plan.seed(i)).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_fold_is_deterministic() {
        let plan = TrialPlan::new(200, 11);
        let a: f64 = plan.mean(|t| (t.seed % 1000) as f64);
        let b: f64 = plan.mean(|t| (t.seed % 1000) as f64);
        assert_eq!(a, b);
    }

    #[test]
    fn trial_rngs_are_independent() {
        use rand::RngCore;
        let plan = TrialPlan::new(2, 9);
        let draws: Vec<u64> = run(&plan, |t| t.rng().next_u64());
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn stats_summary_aggregates() {
        let runs = vec![
            RunStats {
                messages_sent: 10,
                sweeps: 3,
                live_per_round: vec![4, 2, 1],
                messages_per_round: vec![6, 3, 1],
            },
            RunStats {
                messages_sent: 30,
                sweeps: 5,
                live_per_round: vec![4, 4, 3, 2, 1],
                messages_per_round: vec![12, 8, 6, 3, 1],
            },
        ];
        let s = summarize_runs(&runs);
        assert_eq!(s.runs, 2);
        assert_eq!(s.messages_total, 40);
        assert_eq!(s.messages_mean, 20.0);
        assert_eq!(s.sweeps_min, 3);
        assert_eq!(s.sweeps_max, 5);
        assert_eq!(s.sweeps_mean, 4.0);
        assert_eq!(s.rounds_mean, 3.0);
        assert_eq!(s.rounds_max, 4);
        assert_eq!(s.messages_max_round, 12);
    }

    #[test]
    fn zero_and_one_sweep_runs_count_zero_rounds() {
        // A zero-sweep run (engine cut before its first sweep) and a
        // one-sweep run (everyone halted immediately) are distinct states
        // that both perform zero algorithmic rounds.
        let runs = vec![
            RunStats {
                messages_sent: 0,
                sweeps: 0,
                live_per_round: vec![],
                messages_per_round: vec![],
            },
            RunStats {
                messages_sent: 4,
                sweeps: 1,
                live_per_round: vec![2],
                messages_per_round: vec![4],
            },
        ];
        let s = summarize_runs(&runs);
        assert_eq!(s.rounds_mean, 0.0);
        assert_eq!(s.rounds_max, 0);
        assert_eq!(s.sweeps_min, 0);
        assert_eq!(s.sweeps_max, 1);
        assert_eq!(s.messages_max_round, 4);
    }

    #[test]
    fn messages_max_round_is_zero_without_per_round_data() {
        // Old checkpoint records decode with an empty messages_per_round;
        // the aggregate must not invent a peak for them.
        let runs = vec![RunStats {
            messages_sent: 9,
            sweeps: 4,
            live_per_round: vec![3, 2, 1, 0],
            messages_per_round: vec![],
        }];
        let s = summarize_runs(&runs);
        assert_eq!(s.messages_total, 9);
        assert_eq!(s.messages_max_round, 0);
    }

    #[test]
    fn run_with_trace_is_ordered_and_matches_untraced() {
        use local_obs::{EventData, MemorySink};

        let plan = TrialPlan::new(24, 77);
        let body = |trial: Trial, trace: Option<&Trace>| {
            if let Some(tr) = trace {
                let _span = tr.span("trial");
                tr.emit(EventData::SpanStart {
                    name: format!("inner-{}", trial.index),
                });
                tr.emit(EventData::SpanEnd {
                    name: format!("inner-{}", trial.index),
                    micros: 0,
                });
            }
            trial.seed % 1000
        };
        let untraced: Vec<u64> = plan
            .execute(TrialSpec::new(), body)
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        assert_eq!(untraced, run(&plan, |t| t.seed % 1000));

        let mut sink = MemorySink::new();
        let traced: Vec<u64> = plan
            .execute(TrialSpec::new().traced(Some(&mut sink)), body)
            .into_iter()
            .map(TrialOutcome::into_ok)
            .collect();
        assert_eq!(traced, untraced, "tracing must not change results");
        let events = sink.into_events();
        assert_eq!(events.len(), 24 * 4);
        // Events arrive in trial order with per-trial sequence numbers,
        // regardless of which rayon worker ran which trial.
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.trial, (i / 4) as u64);
            assert_eq!(ev.seq, (i % 4) as u64);
        }
    }

    #[test]
    fn empty_batch_summarizes_to_zeros() {
        let empty = summarize_runs([]);
        assert_eq!(empty.runs, 0);
        assert_eq!(empty.messages_total, 0);
        assert_eq!(empty.messages_mean, 0.0);
        assert_eq!(empty.sweeps_mean, 0.0);
        assert_eq!(empty.sweeps_min, 0);
        assert_eq!(empty.sweeps_max, 0);
        assert_eq!(empty.rounds_mean, 0.0);
        assert_eq!(empty.rounds_max, 0);
        assert!(!empty.messages_mean.is_nan());
    }

    #[test]
    fn zero_trial_mean_is_zero_not_nan() {
        let plan = TrialPlan::new(0, 42);
        let m = plan.mean(|_| f64::INFINITY);
        assert_eq!(m, 0.0);
        assert!(!m.is_nan());
        assert!(run(&plan, |t| t.index).is_empty());
        assert!(run_isolated(&plan, |t| t.index).is_empty());
    }

    #[test]
    fn panicking_trial_is_isolated_and_ordered() {
        let plan = TrialPlan::new(16, 5);
        let outcomes = run_isolated(&plan, |t| {
            assert!(t.index != 3 && t.index != 9, "boom at {}", t.index);
            t.index * 2
        });
        assert_eq!(outcomes.len(), 16);
        for (i, o) in outcomes.iter().enumerate() {
            if i == 3 || i == 9 {
                assert!(o.is_panicked());
                if let TrialOutcome::Panicked { message } = o {
                    assert!(message.contains(&format!("boom at {i}")), "{message}");
                }
            } else {
                assert_eq!(o, &TrialOutcome::Ok(i as u64 * 2));
            }
        }
        // Deterministic across repeats despite the parallel pool.
        let again = run_isolated(&plan, |t| {
            assert!(t.index != 3 && t.index != 9, "boom at {}", t.index);
            t.index * 2
        });
        assert_eq!(outcomes, again);
    }

    #[test]
    fn report_renders_json() {
        #[derive(Serialize)]
        struct Row {
            n: usize,
            rounds: f64,
        }
        let rows = vec![Row { n: 8, rounds: 2.5 }];
        let json = TrialReport {
            experiment: "E1",
            mode: "quick",
            rows: &rows,
        }
        .to_json();
        assert!(json.contains("\"experiment\": \"E1\""));
        assert!(json.contains("\"rounds\": 2.5"));
        let v: serde_json::Value = serde_json::from_str(&json).expect("round-trips");
        let mode = v
            .field("mode")
            .and_then(|m| m.as_str())
            .expect("mode field");
        assert_eq!(mode, "quick");
    }

    fn temp_checkpoint(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lcl-trials-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpointed_run_skips_recorded_trials() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let path = temp_checkpoint("skip");
        let plan = TrialPlan::new(10, 21);
        let executed = AtomicU64::new(0);
        let first = {
            let ckpt = Checkpoint::open(&path).expect("open");
            run_checkpointed(&plan, Some((&ckpt, "scope-a")), |t| {
                executed.fetch_add(1, Ordering::Relaxed);
                t.seed % 100
            })
        };
        assert_eq!(executed.load(Ordering::Relaxed), 10);

        // Resume: every trial is recorded, so nothing re-executes and the
        // outcomes are identical.
        let resumed = {
            let ckpt = Checkpoint::open(&path).expect("reopen");
            run_checkpointed(&plan, Some((&ckpt, "scope-a")), |t| {
                executed.fetch_add(1, Ordering::Relaxed);
                t.seed % 100
            })
        };
        assert_eq!(executed.load(Ordering::Relaxed), 10, "no re-execution");
        assert_eq!(first, resumed);

        // A different scope shares the file but none of the results.
        {
            let ckpt = Checkpoint::open(&path).expect("reopen");
            run_checkpointed(&plan, Some((&ckpt, "scope-b")), |t| {
                executed.fetch_add(1, Ordering::Relaxed);
                t.seed % 100
            });
        }
        assert_eq!(executed.load(Ordering::Relaxed), 20);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_run_replays_panics_without_rerunning() {
        let path = temp_checkpoint("panic");
        let plan = TrialPlan::new(6, 33);
        let run = |ckpt: &Checkpoint, allow_panic: bool| {
            run_checkpointed(&plan, Some((ckpt, "s")), |t| {
                if t.index == 2 {
                    assert!(allow_panic, "trial 2 must come from the checkpoint");
                    panic!("boom at 2");
                }
                t.index
            })
        };
        let first = {
            let ckpt = Checkpoint::open(&path).expect("open");
            run(&ckpt, true)
        };
        assert!(first[2].is_panicked());
        let resumed = {
            let ckpt = Checkpoint::open(&path).expect("reopen");
            run(&ckpt, false)
        };
        assert_eq!(first, resumed);
        if let TrialOutcome::Panicked { message } = &resumed[2] {
            assert!(message.contains("boom at 2"), "{message}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_run_completes_a_partial_file() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let path = temp_checkpoint("partial");
        let plan = TrialPlan::new(8, 44);
        // Record only trials 0, 3, 7 — as if the first run was killed.
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            for i in [0u64, 3, 7] {
                ckpt.record(
                    "s",
                    i,
                    serde::Value::Object(vec![(
                        "ok".to_string(),
                        serde::Value::U64(plan.seed(i) % 100),
                    )]),
                )
                .expect("rec");
            }
        }
        let executed = AtomicU64::new(0);
        let outcomes = {
            let ckpt = Checkpoint::open(&path).expect("reopen");
            run_checkpointed(&plan, Some((&ckpt, "s")), |t| {
                executed.fetch_add(1, Ordering::Relaxed);
                t.seed % 100
            })
        };
        assert_eq!(executed.load(Ordering::Relaxed), 5, "3 of 8 were recorded");
        let expected: Vec<TrialOutcome<u64>> = (0..8)
            .map(|i| TrialOutcome::Ok(plan.seed(i) % 100))
            .collect();
        assert_eq!(outcomes, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_none_matches_run_isolated() {
        let plan = TrialPlan::new(12, 55);
        let a: Vec<TrialOutcome<u64>> = run_isolated(&plan, |t| t.seed);
        let b: Vec<TrialOutcome<u64>> = run_checkpointed(&plan, None, |t| t.seed);
        assert_eq!(a, b);
    }

    #[test]
    fn undecodable_recorded_value_is_recomputed() {
        let path = temp_checkpoint("undecodable");
        let plan = TrialPlan::new(1, 66);
        {
            let ckpt = Checkpoint::open(&path).expect("open");
            // Recorded under an old schema: a string where a u64 is expected.
            ckpt.record(
                "s",
                0,
                serde::Value::Object(vec![(
                    "ok".to_string(),
                    serde::Value::String("stale".to_string()),
                )]),
            )
            .expect("rec");
            let outcomes: Vec<TrialOutcome<u64>> =
                run_checkpointed(&plan, Some((&ckpt, "s")), |t| t.seed);
            assert_eq!(outcomes, vec![TrialOutcome::Ok(plan.seed(0))]);
        }
        let _ = std::fs::remove_file(&path);
    }
}
